"""Tests for incremental islandization: delta-driven maintenance.

The load-bearing contract is *exact equivalence*: on every tested
delta — random edit chains, hub creation/destruction, island
merges/splits, fallbacks — the incrementally maintained result must
satisfy ``IslandizationResult.equals`` against a from-scratch run on
the mutated graph, and the refreshed :class:`IncrementalState` must
match a fresh recording field for field (so the *next* delta starts
from the same place either way).
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core import LocatorConfig
from repro.core.islandizer import islandize
from repro.core.islandizer_incremental import (
    IncrementalState,
    record_islandization,
    update_islandization,
)
from repro.errors import ConfigError
from repro.graph import CSRGraph, GraphBuilder
from repro.graph.csr import GraphDelta
from repro.runtime import DiskStore, Engine

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def random_graph(rng, n, avg_deg):
    k = n * avg_deg // 2
    rows = rng.integers(0, n, k)
    cols = rng.integers(0, n, k)
    keep = rows != cols
    return CSRGraph.from_edges(n, rows[keep], cols[keep], name="rnd")


def random_delta(rng, graph, k_ins, k_del):
    """Random insertions + deletions (disjoint undirected pairs)."""
    n = graph.num_nodes
    ins = []
    while len(ins) < k_ins:
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v:
            ins.append((u, v))
    ekeys = graph.edge_keys()
    dels = []
    if len(ekeys) and k_del:
        pick = rng.choice(len(ekeys), size=min(k_del, len(ekeys)),
                          replace=False)
        seen = set()
        for key in ekeys[pick]:
            u, v = int(key) // n, int(key) % n
            edge = (min(u, v), max(u, v))
            if edge not in seen:
                seen.add(edge)
                dels.append(edge)
    dset = set(dels)
    ins = [e for e in ins if (min(e), max(e)) not in dset]
    return GraphDelta.from_edges(
        insertions=np.asarray(ins, dtype=np.int64).reshape(-1, 2),
        deletions=np.asarray(dels, dtype=np.int64).reshape(-1, 2),
    )


def canon(labels):
    """Canonicalize component labels by first occurrence.

    The incremental path relabels dirty components with fresh ids, so
    raw label values differ from a fresh recording; the partition they
    induce must not.
    """
    out = np.full(len(labels), -1, np.int64)
    first: dict[int, int] = {}
    for i, v in enumerate(labels.tolist()):
        if v < 0:
            continue
        if v not in first:
            first[v] = len(first)
        out[i] = first[v]
    return out


_STATE_FIELDS = (
    "log_hubs", "log_seeds", "log_scans", "log_fetches", "log_bytes",
    "log_outcomes", "log_offsets", "class_round", "island_round",
    "island_seed", "island_size", "winner_hubs",
)


def assert_state_fresh(state, graph, config):
    """The refreshed state must equal a fresh recording of ``graph``."""
    _, fresh = record_islandization(graph, config)
    assert state.th0 == fresh.th0
    for field in _STATE_FIELDS:
        assert np.array_equal(getattr(state, field), getattr(fresh, field)), field
    assert np.array_equal(canon(state.comp_labels), canon(fresh.comp_labels))


def check_update(graph, result, state, delta, config, **kwargs):
    """One delta step: equals + state freshness; returns the new triple."""
    upd = update_islandization(graph, result, state, delta, config, **kwargs)
    mutated = graph.apply_delta(delta)
    scratch = islandize(mutated, config)
    assert upd.result.equals(scratch)
    assert_state_fresh(upd.state, mutated, config)
    return mutated, upd


# ----------------------------------------------------------------------
# Random edit chains (both backends)
# ----------------------------------------------------------------------


class TestRandomEditChains:
    @pytest.mark.parametrize("backend", ["batched", "scalar"])
    @pytest.mark.parametrize("trial", range(8))
    def test_chained_deltas_stay_exact(self, backend, trial):
        rng = np.random.default_rng(1000 + trial)
        n = int(rng.integers(20, 120))
        graph = random_graph(rng, n, int(rng.integers(2, 8)))
        config = LocatorConfig(
            backend=backend, th0=int(rng.integers(3, 9)),
            c_max=int(rng.integers(4, 40)), incremental=True,
        )
        result, state = record_islandization(graph, config)
        assert result.equals(islandize(graph, config))
        for _ in range(4):
            delta = random_delta(
                rng, graph, int(rng.integers(1, 6)), int(rng.integers(0, 6))
            )
            graph, upd = check_update(graph, result, state, delta, config)
            result, state = upd.result, upd.state

    def test_interleaved_heavy_churn(self):
        # Bigger single deltas than the chain test: many simultaneous
        # dirty components, island merges and splits in one step.
        rng = np.random.default_rng(77)
        graph = random_graph(rng, 300, 5)
        config = LocatorConfig(th0=6, c_max=32, incremental=True)
        result, state = record_islandization(graph, config)
        for _ in range(3):
            delta = random_delta(rng, graph, 25, 25)
            graph, upd = check_update(graph, result, state, delta, config)
            result, state = upd.result, upd.state


# ----------------------------------------------------------------------
# Targeted structural edits
# ----------------------------------------------------------------------


class TestStructuralEdits:
    def _fixture(self):
        # Two 4-cliques bridged through a 6-leaf star hub: th0=5 makes
        # node 0 the only initial hub.
        builder = GraphBuilder(15)
        builder.add_star(0, range(1, 7))
        builder.add_clique([7, 8, 9, 10])
        builder.add_clique([11, 12, 13, 14])
        builder.add_edge(0, 7)
        builder.add_edge(0, 11)
        graph = builder.build()
        config = LocatorConfig(th0=5, c_max=16, incremental=True)
        return graph, config

    def _step(self, graph, config, insertions=None, deletions=None):
        result, state = record_islandization(graph, config)
        delta = GraphDelta.from_edges(
            insertions=np.asarray(insertions or [], dtype=np.int64).reshape(-1, 2),
            deletions=np.asarray(deletions or [], dtype=np.int64).reshape(-1, 2),
        )
        # On a 15-node fixture any edit dirties most of the graph;
        # disable the fraction heuristic so the splice path itself runs.
        return check_update(graph, result, state, delta, config,
                            max_dirty_fraction=1.0)

    def test_island_merge(self):
        graph, config = self._fixture()
        _, upd = self._step(graph, config, insertions=[(7, 11)])
        assert not upd.fallback
        assert upd.dirty_nodes > 0

    def test_island_split(self):
        graph, config = self._fixture()
        merged = graph.apply_delta(GraphDelta.from_edges(
            insertions=np.array([[7, 11]], dtype=np.int64)
        ))
        result, state = record_islandization(merged, config)
        delta = GraphDelta.from_edges(
            deletions=np.array([[7, 11]], dtype=np.int64)
        )
        check_update(merged, result, state, delta, config,
                     max_dirty_fraction=1.0)

    def test_hub_creation(self):
        graph, config = self._fixture()
        # Node 7 (degree 4) gains edges until it crosses th0=5.
        _, upd = self._step(
            graph, config, insertions=[(7, 12), (7, 13)]
        )
        assert not upd.fallback

    def test_hub_destruction(self):
        graph, config = self._fixture()
        # The star hub loses leaves and drops below th0.
        _, upd = self._step(
            graph, config, deletions=[(0, 1), (0, 2), (0, 3)]
        )
        assert not upd.fallback

    def test_empty_effective_delta_rebinds_graph(self):
        graph, config = self._fixture()
        result, state = record_islandization(graph, config)
        # Inserting an existing edge is effect-free after dedup.
        delta = GraphDelta.from_edges(
            insertions=np.array([[7, 8]], dtype=np.int64)
        )
        upd = update_islandization(graph, result, state, delta, config)
        assert upd.dirty_nodes == 0 and upd.region_nodes == 0
        # Islands are reused by reference; the graph is the mutated one.
        assert [id(i) for i in upd.result.islands] == [
            id(i) for i in result.islands
        ]
        assert upd.result.graph.num_edges == graph.num_edges


# ----------------------------------------------------------------------
# Fallback paths
# ----------------------------------------------------------------------


class TestFallbacks:
    def test_dirty_fraction_fallback_is_still_exact(self):
        rng = np.random.default_rng(5)
        graph = random_graph(rng, 80, 4)
        config = LocatorConfig(th0=5, incremental=True)
        result, state = record_islandization(graph, config)
        delta = random_delta(rng, graph, 3, 3)
        upd = update_islandization(
            graph, result, state, delta, config, max_dirty_fraction=0.0
        )
        assert upd.fallback
        assert "dirty region" in upd.fallback_reason
        mutated = graph.apply_delta(delta)
        assert upd.result.equals(islandize(mutated, config))
        assert_state_fresh(upd.state, mutated, config)

    def test_th0_quantile_move_falls_back(self):
        # A quantile-derived TH0 moves when enough degrees change: the
        # round-1 decomposition is void and the update must rebuild.
        # Four 6-cliques put every degree at 5 (quantile -> TH0 5);
        # four cross-clique edges lift 8 nodes to degree 6, dragging
        # the 0.75-quantile (and TH0) to 6.
        builder = GraphBuilder(24)
        for c in range(4):
            builder.add_clique(list(range(6 * c, 6 * c + 6)))
        graph = builder.build()
        config = LocatorConfig(th0=None, th0_quantile=0.75, incremental=True)
        result, state = record_islandization(graph, config)
        assert state.th0 == 5
        delta = GraphDelta.from_edges(
            insertions=np.array([[0, 6], [1, 7], [2, 8], [3, 9]],
                                dtype=np.int64)
        )
        upd = update_islandization(
            graph, result, state, delta, config, max_dirty_fraction=1.0
        )
        assert upd.fallback
        assert "threshold moved" in upd.fallback_reason
        mutated = graph.apply_delta(delta)
        assert upd.result.equals(islandize(mutated, config))
        assert_state_fresh(upd.state, mutated, config)

    def test_partitions_dispatch(self, rng):
        # partitions > 1 no longer rejects: record/update dispatch to
        # the shard-routed implementation and hand back the partitioned
        # state flavour (its behaviour is pinned by test_pincremental).
        from repro.core.islandizer_pincremental import (
            PartitionedIncrementalState,
            PartitionedIncrementalUpdate,
        )

        graph = random_graph(rng, 120, 5)
        config = LocatorConfig(partitions=2, incremental=True)
        result, state = record_islandization(graph, config)
        assert isinstance(state, PartitionedIncrementalState)
        result.validate()
        delta = random_delta(rng, graph, 2, 2)
        upd = update_islandization(
            graph, result, state, delta, config, max_dirty_fraction=1.0
        )
        assert isinstance(upd, PartitionedIncrementalUpdate)


# ----------------------------------------------------------------------
# State serialization
# ----------------------------------------------------------------------


class TestStateSerialization:
    def test_npz_round_trip(self, rng):
        graph = random_graph(rng, 60, 4)
        config = LocatorConfig(th0=5, incremental=True)
        _, state = record_islandization(graph, config)
        buf = io.BytesIO()
        state.to_npz(buf)
        buf.seek(0)
        loaded = IncrementalState.from_npz(buf)
        assert loaded.th0 == state.th0
        for field in _STATE_FIELDS + ("comp_labels",):
            assert np.array_equal(getattr(loaded, field), getattr(state, field))

    def test_round_tripped_state_still_updates(self, rng):
        graph = random_graph(rng, 60, 4)
        config = LocatorConfig(th0=5, incremental=True)
        result, state = record_islandization(graph, config)
        buf = io.BytesIO()
        state.to_npz(buf)
        buf.seek(0)
        state = IncrementalState.from_npz(buf)
        delta = random_delta(rng, graph, 3, 3)
        check_update(graph, result, state, delta, config)


# ----------------------------------------------------------------------
# Engine + store wiring
# ----------------------------------------------------------------------


class TestEngineWiring:
    def _graph(self):
        rng = np.random.default_rng(9)
        return random_graph(rng, 100, 5)

    def test_islandization_routes_incremental_configs(self):
        graph = self._graph()
        config = LocatorConfig(th0=6, incremental=True)
        engine = Engine(locator=config)
        result = engine.islandization(graph)
        pair_result, state = engine.islandization_state(graph)
        assert pair_result is result
        assert isinstance(state, IncrementalState)
        # One recording produced both kinds: one miss each, then hits.
        stats = engine.cache_stats()
        assert stats["ilstate"].misses == 1
        assert stats["islandization"].misses == 1

    def test_islandization_state_requires_flag(self):
        engine = Engine(locator=LocatorConfig(th0=6))
        with pytest.raises(ConfigError):
            engine.islandization_state(self._graph())

    def test_update_chains_without_recomputing(self):
        graph = self._graph()
        config = LocatorConfig(th0=6, incremental=True)
        engine = Engine(locator=config)
        rng = np.random.default_rng(21)
        upd = engine.update(graph, random_delta(rng, graph, 4, 4))
        assert upd.result.equals(islandize(upd.result.graph, config))
        misses_before = engine.cache_stats()["ilstate"].misses
        upd2 = engine.update(upd.result.graph, random_delta(rng, graph, 3, 3))
        # The chained update found its pair in the store: no re-record.
        assert engine.cache_stats()["ilstate"].misses == misses_before
        assert upd2.result.equals(islandize(upd2.result.graph, config))

    def test_ilstate_persists_through_disk_tier(self, tmp_path):
        graph = self._graph()
        config = LocatorConfig(th0=6, incremental=True)
        first = Engine(locator=config, cache_dir=str(tmp_path))
        result, state = first.islandization_state(graph)
        warm = Engine(locator=config, cache_dir=str(tmp_path))
        warm_result, warm_state = warm.islandization_state(graph)
        assert warm.cache_stats()["ilstate"].misses == 0
        assert warm_result.equals(result)
        for field in _STATE_FIELDS + ("comp_labels",):
            assert np.array_equal(
                getattr(warm_state, field), getattr(state, field)
            )

    def test_plain_and_incremental_configs_do_not_collide(self, tmp_path):
        # The incremental flag is in the digest: a plain engine must
        # not serve (or be served) the recording pair's entries.
        graph = self._graph()
        store = DiskStore(tmp_path)
        inc = Engine(locator=LocatorConfig(th0=6, incremental=True),
                     store=store)
        inc.islandization(graph)
        plain = Engine(locator=LocatorConfig(th0=6), store=store)
        plain.islandization(graph)
        assert plain.cache_stats()["islandization"].misses == 1


# ----------------------------------------------------------------------
# Bench suite + CLI
# ----------------------------------------------------------------------


class TestBenchAndCLI:
    def test_churn_delta_rejects_tiny_graphs(self):
        from repro.eval.bench_incremental import churn_delta

        graph = GraphBuilder(4).add_clique([0, 1, 2, 3]).build()
        with pytest.raises(ConfigError):
            churn_delta(graph, np.random.default_rng(0), 1000, 16)

    @pytest.mark.parametrize("k", [10, 200])
    def test_churn_delta_vectorized_matches_oracle(self, k):
        # The vectorized candidate extraction consumes the same batched
        # draws as the original per-edit loop (oracle=True): identical
        # generator state in, byte-identical delta out.
        from repro.eval.bench_incremental import churn_delta

        rng = np.random.default_rng(5)
        graph = random_graph(rng, 600, 8)
        for th0 in (4, 16):
            vec = churn_delta(graph, np.random.default_rng(11), k, th0)
            orc = churn_delta(
                graph, np.random.default_rng(11), k, th0, oracle=True
            )
            for field in ("insert_src", "insert_dst",
                          "delete_src", "delete_dst"):
                a, b = getattr(vec, field), getattr(orc, field)
                assert a.dtype == b.dtype
                assert a.tobytes() == b.tobytes()

    def test_bench_smoke_record(self, tmp_path):
        from repro.eval.bench_incremental import run_incremental_bench

        record = run_incremental_bench(
            tiers=("1e1",), repeats=1, max_edges=2_000
        )
        (row,) = record["tiers"]
        assert row["equal"] is True
        assert row["delta_edges"] == 10
        assert record["config"]["max_edges"] == 2_000
        assert record["benchmark"] == "locator-incremental"

    def test_bench_cli_smoke(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        out = tmp_path / "incr.json"
        assert main([
            "bench", "incremental", "--tiers", "1e1", "--repeats", "1",
            "--max-edges", "2000", "--output", str(out),
        ]) == 0
        record = json.loads(out.read_text())
        assert all(r["equal"] for r in record["tiers"])
        # No speedup assertion: at smoke scale the win is sub-ms noise.
        assert f"wrote {out}" in capsys.readouterr().out

    def test_bench_cli_rejects_partition_knobs(self, capsys):
        from repro.cli import main

        assert main(["bench", "incremental", "--partitions", "8"]) == 2
        assert "only applies to the partition and pincr suites" in (
            capsys.readouterr().err
        )
        assert main(["bench", "locator", "--delta-seed", "3"]) == 2
        assert "only applies to the incremental and pincr suites" in (
            capsys.readouterr().err
        )

    def test_islandize_delta_cli(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph import load_dataset

        ds = load_dataset("cora", scale=0.15, seed=3)
        graph = ds.graph.without_self_loops()
        u = 0
        v = int(graph.neighbors(0)[0])
        delta = GraphDelta.from_edges(
            deletions=np.array([[u, v]], dtype=np.int64)
        )
        path = tmp_path / "delta.npz"
        delta.to_npz(str(path))
        assert main([
            "islandize", "--dataset", "cora", "--scale", "0.15",
            "--seed", "3", "--th0", "8", "--delta", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "delta:" in out
        assert "dirty" in out
