"""Smoke tests keeping the examples runnable.

The examples double as documentation; CI's docs-check job compiles all
of them, and the streaming-pipeline quickstart (small enough to run in
a test) is executed end-to-end here so its printed claims — identical
results, a strict overlap win — cannot rot.
"""

from __future__ import annotations

import compileall
import runpy
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_examples_compile():
    assert compileall.compile_dir(str(EXAMPLES), quiet=1, force=True)


def test_evolving_graph_example(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["evolving_graph.py"])
    runpy.run_path(
        str(EXAMPLES / "evolving_graph.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "restructuring per snapshot" in out
    assert "Cumulative restructuring cost" in out
    assert "bit-identical islandizations" in out

    # Both from-scratch strategies must cost more than delta
    # maintenance (the exact ratios are machine-dependent; the
    # committed 2e6-edge record lives in BENCH_incremental.json).
    def ratio(marker):
        (line,) = [ln for ln in out.splitlines() if marker in ln]
        return float(line.rsplit("|", 1)[1].strip().rstrip("x"))

    assert ratio("I-GCN incremental (Engine.update)") == 1.0
    assert ratio("record_islandization") > 1.0
    assert ratio("rabbit reorder") > 1.0


def test_streaming_pipeline_example(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["streaming_pipeline.py"])
    runpy.run_path(
        str(EXAMPLES / "streaming_pipeline.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "locator stream:" in out
    assert "round 1:" in out
    assert "staged vs streamed" in out
    assert "speedup from streaming" in out
    # The overlap win the example prints must be a real one (> 1x).
    win = float(out.rsplit(": ", 1)[1].split("x ")[0])
    assert win > 1.0
