"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "cora"
        assert args.model == "gcn"
        assert args.preagg_k == 6

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])

    def test_islandize_args(self):
        args = build_parser().parse_args(
            ["islandize", "--dataset", "citeseer", "--cmax", "32"]
        )
        assert args.cmax == 32

    def test_experiments_only_choices(self):
        args = build_parser().parse_args(["experiments", "--only", "fig11"])
        assert args.only == "fig11"

    def test_locator_backend_defaults_batched(self):
        for command in (["run"], ["islandize"], ["compare"], ["sweep"]):
            assert build_parser().parse_args(command).locator_backend == "batched"

    def test_locator_backend_choices(self):
        args = build_parser().parse_args(
            ["islandize", "--locator-backend", "scalar"]
        )
        assert args.locator_backend == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--locator-backend", "simd"])

    def test_consumer_backend_defaults_batched(self):
        for command in (["run"], ["compare"], ["sweep"]):
            assert (
                build_parser().parse_args(command).consumer_backend
                == "batched"
            )

    def test_consumer_backend_choices(self):
        args = build_parser().parse_args(
            ["run", "--consumer-backend", "scalar"]
        )
        assert args.consumer_backend == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--consumer-backend", "simd"])

    def test_pipeline_defaults_streamed(self):
        for command in (["run"], ["compare"], ["sweep"]):
            assert build_parser().parse_args(command).pipeline == "streamed"

    def test_pipeline_choices(self):
        args = build_parser().parse_args(["run", "--pipeline", "staged"])
        assert args.pipeline == "staged"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--pipeline", "overlapped"])

    def test_islandize_has_no_pipeline_flag(self):
        # islandize stops at the locator: there is no consumer to
        # overlap with.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["islandize", "--pipeline", "staged"])

    def test_docs_defaults(self):
        args = build_parser().parse_args(["docs", "cli"])
        assert args.target == "cli"
        assert args.output == "docs/cli.md"
        assert args.check is False

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench", "locator"])
        assert args.suite == "locator"
        assert args.output is None  # resolved to BENCH_locator.json
        assert args.tiers is None  # resolved to the suite's own ladder

    def test_bench_partition_suite_flags(self):
        args = build_parser().parse_args(
            ["bench", "partition", "--partitions", "8", "--workers", "2",
             "--max-edges", "50000"]
        )
        assert args.suite == "partition"
        assert args.partitions == 8
        assert args.workers == 2
        assert args.max_edges == 50000

    def test_run_partition_flags(self):
        args = build_parser().parse_args(
            ["run", "--partitions", "4", "--partition-strategy", "range"]
        )
        assert args.partitions == 4
        assert args.partition_strategy == "range"

    def test_bench_consumer_suite(self):
        args = build_parser().parse_args(["bench", "consumer"])
        assert args.suite == "consumer"
        assert args.preagg_k == 6

    def test_islandize_has_no_consumer_backend_flag(self):
        # islandize stops at the locator; accepting the flag would be a
        # silent no-op.
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["islandize", "--consumer-backend", "scalar"]
            )

    def test_bench_locator_rejects_preagg_k(self, capsys):
        code = main(["bench", "locator", "--tiers", "1e3", "--repeats", "1",
                     "--preagg-k", "12"])
        assert code == 2
        assert "consumer and pipeline suites" in capsys.readouterr().err


class TestCommands:
    def test_run_small(self, capsys):
        code = main(["run", "--dataset", "cora", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "I-GCN on cora" in out
        assert "prune_agg" in out

    def test_run_functional(self, capsys):
        code = main(["run", "--dataset", "cora", "--scale", "0.05",
                     "--functional"])
        out = capsys.readouterr().out
        assert code == 0
        assert "islandized - reference" in out

    def test_islandize(self, capsys):
        code = main(["islandize", "--dataset", "cora", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "edge coverage validated" in out

    def test_islandize_scalar_backend_same_output(self, capsys):
        main(["islandize", "--dataset", "cora", "--scale", "0.1"])
        batched = capsys.readouterr().out
        main(["islandize", "--dataset", "cora", "--scale", "0.1",
              "--locator-backend", "scalar"])
        scalar = capsys.readouterr().out
        assert scalar == batched

    def test_run_scalar_consumer_backend_same_output(self, capsys):
        main(["run", "--dataset", "cora", "--scale", "0.1"])
        batched = capsys.readouterr().out
        main(["run", "--dataset", "cora", "--scale", "0.1",
              "--consumer-backend", "scalar"])
        scalar = capsys.readouterr().out
        assert scalar == batched

    def test_bench_consumer_writes_record(self, capsys, tmp_path):
        out_file = tmp_path / "bench.json"
        code = main(["bench", "consumer", "--tiers", "1e3", "--repeats", "1",
                     "--output", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "consumer backend scaling" in out
        import json

        record = json.loads(out_file.read_text())
        assert record["benchmark"] == "consumer-scale"
        assert record["tiers"][0]["tier"] == "1e3"
        assert record["tiers"][0]["equal"] is True
        assert record["tiers"][0]["functional_verified"] is True

    def test_run_staged_pipeline_same_counts(self, capsys):
        # Only the latency column may differ between pipeline modes.
        main(["run", "--dataset", "cora", "--scale", "0.1"])
        streamed = capsys.readouterr().out
        main(["run", "--dataset", "cora", "--scale", "0.1",
              "--pipeline", "staged"])
        staged = capsys.readouterr().out
        assert "pipeline" in streamed
        assert streamed != staged  # latency/pipeline columns differ
        for token in ("prune_agg", "rounds"):
            assert token in streamed and token in staged

    def test_bench_pipeline_writes_record(self, capsys, tmp_path):
        out_file = tmp_path / "bench.json"
        code = main(["bench", "pipeline", "--tiers", "1e3", "--repeats", "1",
                     "--output", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "pipeline overlap" in out
        import json

        record = json.loads(out_file.read_text())
        assert record["benchmark"] == "pipeline-overlap"
        row = record["tiers"][0]
        assert row["equal"] is True
        assert row["streamed_cycles"] < row["staged_cycles"]
        assert record["largest_speedup"] > 1.0

    def test_docs_cli_roundtrip(self, capsys, tmp_path):
        out_file = tmp_path / "cli.md"
        code = main(["docs", "cli", "--output", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert "# CLI reference" in text
        assert "## `repro bench`" in text
        assert "--pipeline" in text
        capsys.readouterr()
        assert main(["docs", "cli", "--output", str(out_file),
                     "--check"]) == 0
        out_file.write_text(text + "drift\n")
        assert main(["docs", "cli", "--output", str(out_file),
                     "--check"]) == 1
        assert "stale" in capsys.readouterr().err

    def test_committed_cli_docs_fresh(self):
        # The committed docs/cli.md must match the live parser — the
        # same check CI's docs-check job runs.
        from repro.cli import render_cli_docs

        committed = (
            __import__("pathlib").Path(__file__).resolve().parent.parent
            / "docs" / "cli.md"
        )
        assert committed.read_text() == render_cli_docs()

    def test_bench_locator_writes_record(self, capsys, tmp_path):
        out_file = tmp_path / "bench.json"
        code = main(["bench", "locator", "--tiers", "1e3", "--repeats", "1",
                     "--output", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "locator backend scaling" in out
        import json

        record = json.loads(out_file.read_text())
        assert record["benchmark"] == "locator-scale"
        assert record["tiers"][0]["tier"] == "1e3"
        assert record["tiers"][0]["equal"] is True
        assert record["largest_tier"] == "1e3"

    def test_bench_default_output_refuses_to_shrink_record(
        self, capsys, tmp_path, monkeypatch
    ):
        # A partial smoke run without --output must not clobber a
        # committed fuller record.
        monkeypatch.chdir(tmp_path)
        import json

        (tmp_path / "BENCH_locator.json").write_text(
            json.dumps({"benchmark": "locator-scale",
                        "tiers": [{"tier": t} for t in ("1e3", "1e4", "1e5")]})
        )
        code = main(["bench", "locator", "--tiers", "1e3", "--repeats", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "pass --output" in err
        assert json.loads(
            (tmp_path / "BENCH_locator.json").read_text()
        )["tiers"][-1] == {"tier": "1e5"}

    def test_compare(self, capsys):
        code = main(["compare", "--dataset", "cora", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "awb-gcn" in out
        assert "pyg-cpu" in out

    def test_spy(self, capsys):
        code = main(["spy", "--dataset", "cora", "--scale", "0.1",
                     "--resolution", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "original" in out
        assert "islandized" in out

    def test_experiments_single(self, capsys):
        code = main(["experiments", "--only", "fig11"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 11" in out
