"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "cora"
        assert args.model == "gcn"
        assert args.preagg_k == 6

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])

    def test_islandize_args(self):
        args = build_parser().parse_args(
            ["islandize", "--dataset", "citeseer", "--cmax", "32"]
        )
        assert args.cmax == 32

    def test_experiments_only_choices(self):
        args = build_parser().parse_args(["experiments", "--only", "fig11"])
        assert args.only == "fig11"


class TestCommands:
    def test_run_small(self, capsys):
        code = main(["run", "--dataset", "cora", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "I-GCN on cora" in out
        assert "prune_agg" in out

    def test_run_functional(self, capsys):
        code = main(["run", "--dataset", "cora", "--scale", "0.05",
                     "--functional"])
        out = capsys.readouterr().out
        assert code == 0
        assert "islandized - reference" in out

    def test_islandize(self, capsys):
        code = main(["islandize", "--dataset", "cora", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "edge coverage validated" in out

    def test_compare(self, capsys):
        code = main(["compare", "--dataset", "cora", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "awb-gcn" in out
        assert "pyg-cpu" in out

    def test_spy(self, capsys):
        code = main(["spy", "--dataset", "cora", "--scale", "0.1",
                     "--resolution", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "original" in out
        assert "islandized" in out

    def test_experiments_single(self, capsys):
        code = main(["experiments", "--only", "fig11"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 11" in out
