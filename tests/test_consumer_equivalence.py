"""Batched-vs-scalar consumer backend equivalence.

The batched consumer's contract is *exact* equality with the scalar
per-island oracle: identical :class:`LayerCounts` (every
:class:`ScanCounts` field included), DRAM traffic meters, ring
statistics, HUB-XW-cache access counts, DHUB-PRC update totals and
per-bank counters — and, in functional mode, byte-identical output
matrices.  These tests pin that contract across graph families,
normalisation kinds (self-loops on/off), ``preagg_k`` × ``num_pes``
sweeps, spilling on-chip caches (per-call byte rounding), degenerate
0-island / 0-hub / single-node graphs, and a hypothesis sweep over
random graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConsumerConfig,
    IslandConsumer,
    LocatorConfig,
    TaskBatch,
    build_interhub_plan,
    islandize,
    prepare_tasks,
)
from repro.core.consumer import execution_mismatch
from repro.core.interhub import InterHubPlan
from repro.errors import ConfigError, SimulationError
from repro.graph import CSRGraph, GraphBuilder, erdos_renyi, hub_island_graph
from repro.graph.generators import CommunityProfile, barabasi_albert
from repro.hw import IGCN_DEFAULT, TrafficMeter
from repro.hw.config import HardwareConfig
from repro.models import LayerSpec, normalization_for

_LAYERS = (
    LayerSpec(12, 16, activation="relu"),
    LayerSpec(16, 5, activation="none"),
)


def _run_backend(
    graph,
    result,
    backend,
    *,
    agg="gcn-sym",
    preagg_k=6,
    num_pes=8,
    functional=False,
    hw=None,
    seed=0,
    layers=_LAYERS,
):
    """One full multi-layer pass; returns everything the contract pins."""
    norm = normalization_for(graph, agg)
    plan = build_interhub_plan(result, add_self_loops=norm.add_self_loops)
    consumer = IslandConsumer(
        ConsumerConfig(preagg_k=preagg_k, num_pes=num_pes, backend=backend),
        hw or IGCN_DEFAULT,
    )
    tasks = consumer.prepare(result, add_self_loops=norm.add_self_loops)
    rng = np.random.default_rng(seed)
    current = (
        rng.normal(size=(graph.num_nodes, layers[0].in_dim))
        if functional else None
    )
    weights = (
        [rng.normal(size=(layer.in_dim, layer.out_dim)) for layer in layers]
        if functional else None
    )
    runs = []
    for idx, layer in enumerate(layers):
        meter = TrafficMeter()
        execution = consumer.run_layer(
            result, tasks, plan, norm, layer,
            layer_index=idx, meter=meter,
            x=current if functional else None,
            w=weights[idx] if functional else None,
            feature_density=0.5 if idx == 0 else 1.0,
            final_layer=idx == len(layers) - 1,
        )
        runs.append((execution, meter))
        if functional:
            current = execution.output
    return runs, consumer.ring.stats


def assert_equivalent(graph, *, locator_kwargs=None, **kwargs):
    """Both backends must agree exactly, counts and functional mode."""
    clean = graph.without_self_loops()
    result = islandize(clean, LocatorConfig(**(locator_kwargs or {})))
    for functional in (False, True):
        scalar, s_ring = _run_backend(
            clean, result, "scalar", functional=functional, **kwargs
        )
        batched, b_ring = _run_backend(
            clean, result, "batched", functional=functional, **kwargs
        )
        assert s_ring == b_ring
        for (s_exec, s_meter), (b_exec, b_meter) in zip(scalar, batched):
            # One shared contract definition with the benchmark's
            # per-tier verification (repro.core.consumer).
            mismatch = execution_mismatch(
                s_exec, s_meter, b_exec, b_meter, functional=functional
            )
            assert mismatch is None, mismatch


class TestGraphFamilies:
    @pytest.mark.parametrize("seed", range(3))
    def test_hub_island(self, seed):
        graph, _ = hub_island_graph(
            300,
            CommunityProfile(hub_fraction=0.04, background_fraction=0.03),
            seed=seed,
        )
        assert_equivalent(graph)

    @pytest.mark.parametrize("seed", range(2))
    def test_erdos_renyi(self, seed):
        assert_equivalent(erdos_renyi(200, 4.0, seed=seed))

    def test_power_law(self):
        # Heavy hubs: many islands attach to the same hub, exercising
        # the ordered multi-contribution fold into DHUB-PRC rows.
        assert_equivalent(barabasi_albert(250, 3, seed=1))

    def test_fig7(self, fig7):
        graph, _, _ = fig7
        assert_equivalent(graph, locator_kwargs={"th0": 4})

    def test_clique_small_cmax(self):
        assert_equivalent(
            GraphBuilder(30).add_clique(range(30)).build(),
            locator_kwargs={"c_max": 6},
        )


class TestNormalisationKinds:
    """Self-loop handling differs per aggregation: all must agree."""

    @pytest.mark.parametrize("agg", ["gcn-sym", "sage-mean", "gin-sum"])
    def test_aggregations(self, agg, community_graph):
        graph, _ = community_graph
        assert_equivalent(graph, agg=agg)


class TestConfigSweep:
    @pytest.mark.parametrize("preagg_k", [2, 3, 7, 64])
    def test_preagg_widths(self, preagg_k, community_graph):
        graph, _ = community_graph
        assert_equivalent(graph, preagg_k=preagg_k)

    @pytest.mark.parametrize("num_pes", [1, 3, 8, 17])
    def test_pe_counts(self, num_pes, community_graph):
        graph, _ = community_graph
        assert_equivalent(graph, num_pes=num_pes)

    def test_small_cmax_many_islands(self, community_graph):
        graph, _ = community_graph
        assert_equivalent(graph, locator_kwargs={"c_max": 3})


class TestChunkedFunctionalScan:
    def test_tiny_chunks_stay_exact(self, monkeypatch, community_graph):
        # Force every shape group through many small chunks: chunk
        # boundaries must not change a single bit of the contract.
        import repro.core.consumer_batched as consumer_batched

        monkeypatch.setattr(consumer_batched, "_CHUNK_CELLS", 64)
        graph, _ = community_graph
        assert_equivalent(graph)


def _hot_hub_graph(num_islands: int) -> CSRGraph:
    """One hub node feeding ``num_islands`` two-node islands.

    Every island task contributes to the same hub row, so the ordered
    hub fold sees a single segment with ``num_islands`` ranks — the
    pathological shape that used to cost one Python-level scatter per
    rank.
    """
    builder = GraphBuilder(1 + 2 * num_islands)
    for i in range(num_islands):
        a, b = 1 + 2 * i, 2 + 2 * i
        builder.add_edge(a, b)
        builder.add_edge(0, a)
    return builder.build()


class TestHotHubFold:
    """Single hot hub touching thousands of islands (blocked fold)."""

    def test_single_hot_hub_thousands_of_islands(self):
        assert_equivalent(_hot_hub_graph(1200), locator_kwargs={"th0": 8})

    def test_tiny_fold_blocks_stay_exact(self, monkeypatch):
        # Force the fold through many narrow blocks: block boundaries
        # must not change a single bit of the accumulation.
        import repro.core.consumer_batched as consumer_batched

        monkeypatch.setattr(consumer_batched, "_FOLD_BLOCK_ELEMS", 64)
        assert_equivalent(_hot_hub_graph(150), locator_kwargs={"th0": 8})

    def test_fold_is_exact_and_single_pass(self):
        # The regression itself: one hub with thousands of ranks must
        # fold in O(max-rank / block-width) passes — here exactly one
        # cumsum — while reproducing the scalar left fold bit for bit.
        from types import SimpleNamespace
        from unittest import mock

        import repro.core.consumer_batched as consumer_batched

        rng = np.random.default_rng(3)
        ranks, channels = 5000, 8
        contrib = rng.normal(size=(ranks, channels))
        positions = np.zeros(ranks, dtype=np.int64)
        start = rng.normal(size=(1, channels))
        expected = start[0].copy()
        for row in contrib:
            expected = expected + row
        state = SimpleNamespace(
            hub_ids=np.array([7]), hub_acc=start.copy()
        )
        passes = {"n": 0}
        real_cumsum = np.cumsum

        def counting_cumsum(a, *args, **kwargs):
            if getattr(a, "ndim", 0) == 3:  # block folds, not cumsum0
                passes["n"] += 1
            return real_cumsum(a, *args, **kwargs)

        with mock.patch.object(np, "cumsum", counting_cumsum):
            consumer_batched._ordered_hub_fold(state, positions, contrib)
        assert passes["n"] == 1
        np.testing.assert_array_equal(state.hub_acc[0], expected)


class TestSpillingCaches:
    """Undersized on-chip caches: per-call spill rounding must match."""

    def test_spilling_hub_structures(self, community_graph):
        graph, _ = community_graph
        tiny = HardwareConfig(hub_xw_cache_bytes=96, hub_prc_bytes=128)
        assert_equivalent(graph, hw=tiny)

    def test_spilling_star(self, star):
        tiny = HardwareConfig(hub_xw_cache_bytes=16, hub_prc_bytes=16)
        assert_equivalent(graph=star, hw=tiny, locator_kwargs={"th0": 3})


class TestDegenerateGraphs:
    def test_zero_nodes(self):
        assert_equivalent(CSRGraph.empty(0))

    def test_isolated_nodes_no_hubs(self):
        # Singleton islands, zero hubs, zero inter-hub edges.
        assert_equivalent(CSRGraph.empty(6))

    def test_single_node(self):
        assert_equivalent(CSRGraph.empty(1))

    def test_star_single_hub(self, star):
        assert_equivalent(star, locator_kwargs={"th0": 3})

    def test_path(self, path4):
        assert_equivalent(path4)

    def test_two_node_components(self):
        builder = GraphBuilder(10)
        for i in range(0, 10, 2):
            builder.add_edge(i, i + 1)
        assert_equivalent(builder.build())


class TestBackendConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            ConsumerConfig(backend="simd")

    def test_default_backend_is_batched(self):
        assert ConsumerConfig().backend == "batched"
        assert IslandConsumer().config.backend == "batched"

    def test_backend_is_part_of_config_digest(self):
        # Cached artifacts keyed by config digest must never mix
        # backends (shared artifact stores across processes).
        from repro.serialize import config_digest

        assert config_digest(ConsumerConfig(backend="batched")) != (
            config_digest(ConsumerConfig(backend="scalar"))
        )

    def test_prepare_returns_backend_representation(self, community_graph):
        graph, _ = community_graph
        result = islandize(graph.without_self_loops())
        batch = IslandConsumer(ConsumerConfig(backend="batched")).prepare(
            result, add_self_loops=True
        )
        assert isinstance(batch, TaskBatch)
        tasks = IslandConsumer(ConsumerConfig(backend="scalar")).prepare(
            result, add_self_loops=True
        )
        assert isinstance(tasks, list)

    def test_scalar_backend_rejects_task_batch(self, community_graph):
        graph, _ = community_graph
        clean = graph.without_self_loops()
        result = islandize(clean)
        norm = normalization_for(clean, "gcn-sym")
        plan = build_interhub_plan(result, add_self_loops=True)
        batch = TaskBatch.from_result(result, add_self_loops=True)
        consumer = IslandConsumer(ConsumerConfig(backend="scalar"))
        with pytest.raises(SimulationError):
            consumer.run_layer(
                result, batch, plan, norm, _LAYERS[0],
                layer_index=0, meter=TrafficMeter(),
            )

    def test_batched_backend_accepts_task_list(self, community_graph):
        # Convenience conversion: a prepare_tasks() list fed to the
        # batched backend is packed on the fly and must still match.
        graph, _ = community_graph
        clean = graph.without_self_loops()
        result = islandize(clean)
        norm = normalization_for(clean, "gcn-sym")
        plan = build_interhub_plan(result, add_self_loops=True)
        tasks = prepare_tasks(result, add_self_loops=True)
        runs = {}
        for backend in ("scalar", "batched"):
            consumer = IslandConsumer(ConsumerConfig(backend=backend))
            execution = consumer.run_layer(
                result, tasks, plan, norm, _LAYERS[0],
                layer_index=0, meter=TrafficMeter(),
            )
            runs[backend] = (execution, consumer.ring.stats)
        assert runs["scalar"][0].counts == runs["batched"][0].counts
        assert runs["scalar"][1] == runs["batched"][1]

    def test_task_batch_matches_prepare_tasks(self, community_graph):
        """from_result packs exactly the bitmaps prepare_tasks builds."""
        graph, _ = community_graph
        result = islandize(graph.without_self_loops())
        for add_self_loops in (False, True):
            tasks = prepare_tasks(result, add_self_loops=add_self_loops)
            batch = TaskBatch.from_result(
                result, add_self_loops=add_self_loops
            )
            ref = TaskBatch.from_tasks(tasks)
            assert batch.num_tasks == len(tasks)
            for name in ("num_hubs", "num_locals", "local_nodes",
                         "local_offsets", "hub_nodes", "hub_offsets",
                         "entry_task", "entry_row", "entry_col", "nnz"):
                assert np.array_equal(
                    getattr(batch, name), getattr(ref, name)
                ), name
            assert np.array_equal(
                batch.nnz, np.asarray([t.nnz for t in tasks], dtype=np.int64)
            )


class TestInterhubValidation:
    """The malformed-plan check must fire in counts mode too (PR fix)."""

    @pytest.mark.parametrize("backend", ["scalar", "batched"])
    def test_counts_mode_rejects_non_hub_target(
        self, backend, community_graph
    ):
        graph, _ = community_graph
        clean = graph.without_self_loops()
        result = islandize(clean)
        norm = normalization_for(clean, "gcn-sym")
        member = int(result.islands[0].members[0])
        hub = int(result.hub_ids[0])
        bad = InterHubPlan(
            directed_edges=np.asarray([[member, hub]], dtype=np.int64),
            self_loop_hubs=np.zeros(0, dtype=np.int64),
        )
        consumer = IslandConsumer(ConsumerConfig(backend=backend))
        tasks = consumer.prepare(result, add_self_loops=True)
        with pytest.raises(SimulationError, match="outside hub_ids"):
            consumer.run_layer(
                result, tasks, bad, norm, _LAYERS[0],
                layer_index=0, meter=TrafficMeter(),
            )

    @pytest.mark.parametrize("backend", ["scalar", "batched"])
    @pytest.mark.parametrize("bogus", [-1, 10_000_000])
    def test_rejects_out_of_range_target(
        self, backend, bogus, community_graph
    ):
        # Negative ids must not wrap through Python indexing (hub_pos[-1]
        # is the last node, which may legitimately be a hub) and huge
        # ids must raise the clean error, not IndexError.
        graph, _ = community_graph
        clean = graph.without_self_loops()
        result = islandize(clean)
        norm = normalization_for(clean, "gcn-sym")
        hub = int(result.hub_ids[0])
        bad = InterHubPlan(
            directed_edges=np.asarray([[bogus, hub]], dtype=np.int64),
            self_loop_hubs=np.zeros(0, dtype=np.int64),
        )
        consumer = IslandConsumer(ConsumerConfig(backend=backend))
        tasks = consumer.prepare(result, add_self_loops=True)
        with pytest.raises(SimulationError, match="outside hub_ids"):
            consumer.run_layer(
                result, tasks, bad, norm, _LAYERS[0],
                layer_index=0, meter=TrafficMeter(),
            )

    @pytest.mark.parametrize("backend", ["scalar", "batched"])
    def test_counts_mode_rejects_non_hub_self_loop(
        self, backend, community_graph
    ):
        graph, _ = community_graph
        clean = graph.without_self_loops()
        result = islandize(clean)
        norm = normalization_for(clean, "gcn-sym")
        member = int(result.islands[0].members[0])
        bad = InterHubPlan(
            directed_edges=np.zeros((0, 2), dtype=np.int64),
            self_loop_hubs=np.asarray([member], dtype=np.int64),
        )
        consumer = IslandConsumer(ConsumerConfig(backend=backend))
        tasks = consumer.prepare(result, add_self_loops=True)
        with pytest.raises(SimulationError, match="outside hub_ids"):
            consumer.run_layer(
                result, tasks, bad, norm, _LAYERS[0],
                layer_index=0, meter=TrafficMeter(),
            )


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=60),
    num_edges=st.integers(min_value=0, max_value=220),
    c_max=st.integers(min_value=1, max_value=80),
    preagg_k=st.sampled_from([2, 3, 6, 11]),
    num_pes=st.sampled_from([1, 4, 8]),
    edge_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_graphs_property(
    num_nodes, num_edges, c_max, preagg_k, num_pes, edge_seed
):
    """Hypothesis sweep: arbitrary symmetric graphs and configs agree."""
    rng = np.random.default_rng(edge_seed)
    rows = rng.integers(0, num_nodes, size=num_edges)
    cols = rng.integers(0, num_nodes, size=num_edges)
    keep = rows != cols
    graph = CSRGraph.from_edges(num_nodes, rows[keep], cols[keep], name="hyp")
    assert_equivalent(
        graph,
        locator_kwargs={"c_max": c_max},
        preagg_k=preagg_k,
        num_pes=num_pes,
    )
