"""Unit tests for the six lightweight reordering baselines + metrics."""

import numpy as np
import pytest

from repro.graph import CSRGraph, GraphBuilder, erdos_renyi, hub_island_graph
from repro.graph.generators import CommunityProfile
from repro.graph.reorder import (
    average_index_distance,
    bandwidth,
    get_reordering,
    locality_report,
    outlier_fraction,
    reordering_names,
    tile_coverage,
    working_set_score,
)
from repro.graph.reorder.dbg import dbg_group_ids
from repro.graph.reorder.degree import hot_mask
from repro.errors import GraphError

PAPER_SIX = ["rabbit", "dbg", "hubsort", "hubcluster", "dbg-hubsort", "dbg-hubcluster"]


@pytest.fixture(scope="module")
def skewed_graph():
    graph, _ = hub_island_graph(
        400, CommunityProfile(hub_fraction=0.05, background_fraction=0.05), seed=9
    )
    return graph


class TestRegistry:
    def test_paper_six_registered(self):
        names = reordering_names()
        for name in PAPER_SIX:
            assert name in names

    def test_paper_order_first(self):
        assert reordering_names()[:6] == PAPER_SIX

    def test_unknown_raises(self):
        with pytest.raises(GraphError):
            get_reordering("metis")


@pytest.mark.parametrize("name", PAPER_SIX + ["sort"])
class TestEveryReordering:
    def test_output_is_permutation(self, name, skewed_graph):
        result = get_reordering(name).run(skewed_graph)
        perm = np.sort(result.permutation)
        assert np.array_equal(perm, np.arange(skewed_graph.num_nodes))

    def test_deterministic(self, name, skewed_graph):
        a = get_reordering(name).run(skewed_graph).permutation
        b = get_reordering(name).run(skewed_graph).permutation
        assert np.array_equal(a, b)

    def test_apply_preserves_edges(self, name, skewed_graph):
        result = get_reordering(name).run(skewed_graph)
        assert result.apply(skewed_graph).num_edges == skewed_graph.num_edges

    def test_timing_recorded(self, name, skewed_graph):
        result = get_reordering(name).run(skewed_graph)
        assert result.seconds > 0


class TestDegreeFamilies:
    def test_sort_descending(self, skewed_graph):
        perm = get_reordering("sort").run(skewed_graph).permutation
        order = np.empty_like(perm)
        order[perm] = np.arange(len(perm))
        degrees = skewed_graph.degrees[order]
        assert np.all(np.diff(degrees) <= 0)

    def test_hubsort_hot_nodes_first(self, skewed_graph):
        perm = get_reordering("hubsort").run(skewed_graph).permutation
        hot = hot_mask(skewed_graph)
        assert perm[hot].max() < perm[~hot].min()

    def test_hubcluster_preserves_hot_order(self, skewed_graph):
        perm = get_reordering("hubcluster").run(skewed_graph).permutation
        hot_ids = np.flatnonzero(hot_mask(skewed_graph))
        assert np.all(np.diff(perm[hot_ids]) > 0)

    def test_hubcluster_preserves_cold_order(self, skewed_graph):
        perm = get_reordering("hubcluster").run(skewed_graph).permutation
        cold_ids = np.flatnonzero(~hot_mask(skewed_graph))
        assert np.all(np.diff(perm[cold_ids]) > 0)


class TestDBG:
    def test_group_ids_monotone_with_degree(self):
        degrees = np.array([100, 50, 10, 5, 1])
        groups = dbg_group_ids(degrees)
        assert np.all(np.diff(groups) >= 0)

    def test_dbg_hot_groups_lead(self, skewed_graph):
        perm = get_reordering("dbg").run(skewed_graph).permutation
        degrees = skewed_graph.degrees
        top = np.argsort(-degrees)[:5]
        assert perm[top].max() < skewed_graph.num_nodes // 2

    def test_dbg_empty_graph(self):
        g = CSRGraph.empty(0)
        assert len(get_reordering("dbg").run(g).permutation) == 0


class TestRabbit:
    def test_clusters_planted_communities(self):
        graph, labels = hub_island_graph(
            300,
            CommunityProfile(hub_fraction=0.03, island_density=0.9,
                             background_fraction=0.01),
            seed=4,
        )
        perm = get_reordering("rabbit").run(graph).permutation
        # Members of the same island should land close together.
        spans = []
        for island in range(labels.max() + 1):
            members = np.flatnonzero(labels == island)
            if len(members) >= 3:
                spans.append(np.ptp(perm[members]) / len(members))
        assert np.median(spans) < graph.num_nodes / 20

    def test_improves_locality_over_random(self):
        g = erdos_renyi(300, 6.0, seed=2)
        graph, _ = hub_island_graph(300, CommunityProfile(), seed=2)
        before = average_index_distance(graph)
        after = average_index_distance(
            get_reordering("rabbit").run(graph).apply(graph)
        )
        assert after < before


class TestMetrics:
    def test_empty_graph_metrics(self, empty_graph):
        assert average_index_distance(empty_graph) == 0.0
        assert bandwidth(empty_graph) == 0.0
        assert tile_coverage(empty_graph) == 1.0

    def test_diagonal_layout_is_local(self):
        g = GraphBuilder(100, name="chain").add_path(range(100)).build()
        assert average_index_distance(g) == pytest.approx(1 / 100)
        assert bandwidth(g) == pytest.approx(1 / 100)

    def test_tile_coverage_dense_block(self):
        g = GraphBuilder(64).add_clique(range(32)).build()
        assert tile_coverage(g, tile=32, density_threshold=0.1) == 1.0

    def test_outlier_fraction_complement(self, skewed_graph):
        cov = tile_coverage(skewed_graph)
        out = outlier_fraction(skewed_graph)
        assert cov + out == pytest.approx(1.0)

    def test_working_set_chain_low(self):
        g = GraphBuilder(128).add_path(range(128)).build()
        assert working_set_score(g, block=64) <= 2.0

    def test_report_fields(self, skewed_graph):
        rep = locality_report(skewed_graph, name="x")
        d = rep.as_dict()
        assert d["layout"] == "x"
        assert 0 <= d["tile_cov"] <= 1


class TestRCM:
    """Extension baseline: Reverse Cuthill-McKee."""

    def test_registered(self):
        assert "rcm" in reordering_names()

    def test_permutation_valid(self, skewed_graph):
        perm = get_reordering("rcm").run(skewed_graph).permutation
        assert np.array_equal(np.sort(perm), np.arange(skewed_graph.num_nodes))

    def test_reduces_bandwidth_on_chain(self):
        # A shuffled chain: RCM should restore near-optimal bandwidth.
        rng = np.random.default_rng(0)
        shuffle = rng.permutation(60)
        g = GraphBuilder(60).add_path(shuffle.tolist()).build()
        before = bandwidth(g)
        after = bandwidth(get_reordering("rcm").run(g).apply(g))
        assert after < before

    def test_handles_disconnected(self):
        g = GraphBuilder(6).add_edge(0, 1).add_edge(2, 3).build()
        perm = get_reordering("rcm").run(g).permutation
        assert np.array_equal(np.sort(perm), np.arange(6))
