"""Unit tests for the Island Consumer and its sub-plans."""

import numpy as np
import pytest

from repro.core import (
    ConsumerConfig,
    IslandConsumer,
    LocatorConfig,
    build_interhub_plan,
    islandize,
    prepare_tasks,
)
from repro.core.consumer import LayerCounts
from repro.core.hub_cache import HubPartialResultCache, HubXWCache
from repro.core.preagg import ScanCounts
from repro.errors import ConfigError, SimulationError
from repro.hw import IGCN_DEFAULT, TrafficMeter
from repro.models import gcn_model, normalization_for


@pytest.fixture
def fig7_setup(fig7):
    graph, members, hubs = fig7
    result = islandize(graph, LocatorConfig(th0=4))
    norm = normalization_for(graph, "gcn-sym")
    tasks = prepare_tasks(result, add_self_loops=True)
    plan = build_interhub_plan(result, add_self_loops=True)
    return graph, result, norm, tasks, plan


class TestConsumerConfig:
    def test_defaults(self):
        c = ConsumerConfig()
        assert c.preagg_k == 6
        assert c.num_pes == 8

    def test_rejects_k1(self):
        with pytest.raises(ConfigError):
            ConsumerConfig(preagg_k=1)


class TestInterhubPlan:
    def test_directed_expansion(self, fig7_setup):
        _, result, _, _, plan = fig7_setup
        canonical = len(result.interhub_edges)
        assert len(plan.directed_edges) == 2 * canonical

    def test_self_loops_for_all_hubs(self, fig7_setup):
        _, result, _, _, plan = fig7_setup
        assert set(plan.self_loop_hubs.tolist()) == set(result.hub_ids.tolist())

    def test_no_self_loops_for_gin(self, fig7_setup):
        _, result, _, _, _ = fig7_setup
        plan = build_interhub_plan(result, add_self_loops=False)
        assert len(plan.self_loop_hubs) == 0

    def test_macs_scale_with_out_dim(self, fig7_setup):
        _, _, _, _, plan = fig7_setup
        assert plan.macs(16) == plan.num_ops * 16


class TestHubCaches:
    def test_xw_cache_hit_free(self):
        cache = HubXWCache(capacity_bytes=1 << 20, row_bytes=64, num_hubs=10)
        m = TrafficMeter()
        assert cache.access(100, m) == 0.0
        assert m.total_bytes == 0

    def test_xw_cache_spill(self):
        cache = HubXWCache(capacity_bytes=64, row_bytes=64, num_hubs=10)
        m = TrafficMeter()
        cache.access(10, m)
        assert m.reads.get("hub-xw-spill", 0) > 0

    def test_prc_bank_assignment_fixed(self):
        prc = HubPartialResultCache(1 << 20, 64, num_hubs=10, num_banks=4)
        assert prc.home_bank(6) == prc.home_bank(6) == 2

    def test_prc_tracks_imbalance(self):
        prc = HubPartialResultCache(1 << 20, 64, num_hubs=8, num_banks=4)
        m = TrafficMeter()
        for _ in range(9):
            prc.update(0, m)
        assert prc.bank_imbalance > 1.0

    def test_prc_balanced_updates(self):
        prc = HubPartialResultCache(1 << 20, 64, num_hubs=8, num_banks=4)
        m = TrafficMeter()
        for hub in range(8):
            prc.update(hub, m)
        assert prc.bank_imbalance == pytest.approx(1.0)


class TestBatchedHubAttachment:
    """send_many / update_many must count exactly like scalar loops."""

    def test_ring_send_many_matches_sequential(self):
        from repro.hw.ring import RingNetwork

        hubs = [13, 2, 9, 13, 21, 2, 5]  # duplicates reduce in-network
        seq, batch = RingNetwork(8), RingNetwork(8)
        for hub in hubs:
            seq.send(3, hub)
        batch.send_many(3, hubs)
        assert batch.stats == seq.stats

    def test_ring_send_many_respects_in_flight(self):
        from repro.hw.ring import RingNetwork

        seq, batch = RingNetwork(8), RingNetwork(8)
        seq.send(1, 9)
        batch.send(1, 9)
        # Hub 9 is still in flight (no drain): it must reduce again.
        seq.send(1, 9)
        seq.send(1, 4)
        batch.send_many(1, [9, 4])
        assert batch.stats == seq.stats

    def test_prc_update_many_matches_sequential_no_spill(self):
        hubs = [0, 5, 9, 5, 14]
        seq = HubPartialResultCache(1 << 20, 64, num_hubs=16, num_banks=4)
        batch = HubPartialResultCache(1 << 20, 64, num_hubs=16, num_banks=4)
        m1, m2 = TrafficMeter(), TrafficMeter()
        for hub in hubs:
            seq.update(hub, m1)
        batch.update_many(hubs, m2)
        assert batch.bank_updates == seq.bank_updates
        assert batch.updates == seq.updates
        assert m2.reads == m1.reads

    def test_prc_update_many_matches_sequential_spilling(self):
        hubs = [0, 5, 9, 5, 14]
        seq = HubPartialResultCache(64, 64, num_hubs=16, num_banks=4)
        batch = HubPartialResultCache(64, 64, num_hubs=16, num_banks=4)
        m1, m2 = TrafficMeter(), TrafficMeter()
        for hub in hubs:
            seq.update(hub, m1)
        batch.update_many(hubs, m2)
        assert batch.bank_updates == seq.bank_updates
        assert batch.updates == seq.updates
        assert m2.reads == m1.reads


class TestLayerCounts:
    def test_pruning_accounting(self):
        counts = LayerCounts(layer_index=0, in_dim=4, out_dim=10)
        counts.scan = ScanCounts(baseline_ops=100, scan_ops=60, preagg_build_ops=5)
        counts.interhub_ops = 10
        assert counts.aggregation_baseline_macs == 110 * 10
        assert counts.aggregation_actual_macs == 75 * 10
        assert counts.aggregation_pruning_rate == pytest.approx(35 / 110)

    def test_totals(self):
        counts = LayerCounts(layer_index=0, in_dim=4, out_dim=2)
        counts.combination_macs = 100
        counts.scale_macs = 10
        counts.scan = ScanCounts(baseline_ops=50, scan_ops=30)
        assert counts.total_macs == 100 + 10 + 60
        assert counts.total_baseline_macs == 100 + 10 + 100


class TestRunLayer:
    def test_counting_mode(self, fig7_setup):
        graph, result, norm, tasks, plan = fig7_setup
        consumer = IslandConsumer(ConsumerConfig(), IGCN_DEFAULT)
        meter = TrafficMeter()
        model = gcn_model(8, 3)
        execution = consumer.run_layer(
            result, tasks, plan, norm, model.layers[0],
            layer_index=0, meter=meter, feature_density=0.5,
        )
        assert execution.output is None
        counts = execution.counts
        assert counts.combination_macs == round(8 * 8 * 0.5) * 16
        assert counts.aggregation_baseline_macs > 0
        assert meter.reads["features"] > 0
        assert meter.writes["results"] > 0

    def test_functional_requires_weights(self, fig7_setup):
        graph, result, norm, tasks, plan = fig7_setup
        consumer = IslandConsumer()
        model = gcn_model(8, 3)
        with pytest.raises(SimulationError):
            consumer.run_layer(
                result, tasks, plan, norm, model.layers[0],
                layer_index=0, meter=TrafficMeter(), x=np.zeros((8, 8)),
            )

    def test_functional_matches_reference_single_layer(self, fig7_setup):
        graph, result, norm, tasks, plan = fig7_setup
        from repro.models import normalized_adjacency

        from repro.models import LayerSpec

        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 5))
        w = rng.normal(size=(5, 4))
        consumer = IslandConsumer(ConsumerConfig(preagg_k=2), IGCN_DEFAULT)
        layer = LayerSpec(5, 4, activation="relu")
        execution = consumer.run_layer(
            result, tasks, plan, norm, layer,
            layer_index=0, meter=TrafficMeter(), x=x, w=w,
        )
        expected = normalized_adjacency(graph, "gcn-sym") @ (x @ w)
        expected = np.maximum(expected, 0.0)
        assert np.allclose(execution.output, expected)

    def test_hidden_layer_writes_resident_category(self, fig7_setup):
        graph, result, norm, tasks, plan = fig7_setup
        consumer = IslandConsumer()
        meter = TrafficMeter()
        model = gcn_model(8, 3)
        consumer.run_layer(
            result, tasks, plan, norm, model.layers[0],
            layer_index=0, meter=meter, final_layer=False,
        )
        assert "hidden-results" in meter.writes
        assert "results" not in meter.writes
