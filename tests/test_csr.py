"""Unit tests for CSR graph storage."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph


class TestConstruction:
    def test_from_edges_symmetrizes(self):
        g = CSRGraph.from_edges(3, [0], [1])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.num_edges == 2

    def test_from_edges_deduplicates(self):
        g = CSRGraph.from_edges(3, [0, 0, 1], [1, 1, 0])
        assert g.num_edges == 2

    def test_from_edges_no_symmetrize(self):
        g = CSRGraph.from_edges(3, [0], [1], symmetrize=False)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_empty(self):
        g = CSRGraph.empty(4)
        assert g.num_nodes == 4
        assert g.num_edges == 0

    def test_zero_nodes(self):
        g = CSRGraph.empty(0)
        assert g.num_nodes == 0
        assert g.avg_degree == 0.0

    def test_rejects_bad_indptr_start(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))

    def test_rejects_indptr_indices_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 2]), indices=np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([0, 1]))

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([5]))

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [0], [5])

    def test_from_scipy_roundtrip(self, fig2):
        again = CSRGraph.from_scipy(fig2.to_scipy())
        assert np.array_equal(again.indptr, fig2.indptr)
        assert np.array_equal(again.indices, fig2.indices)

    def test_indices_sorted_within_rows(self, fig2):
        for u in range(fig2.num_nodes):
            row = fig2.neighbors(u)
            assert np.all(np.diff(row) > 0)


class TestProperties:
    def test_fig2_shape(self, fig2):
        assert fig2.num_nodes == 6
        assert fig2.num_edges == 16  # 8 undirected edges

    def test_degrees(self, fig2):
        assert fig2.degrees.sum() == fig2.num_edges
        assert fig2.degree(1) == len(fig2.neighbors(1))

    def test_max_avg_degree(self, star):
        assert star.max_degree == 5
        assert star.avg_degree == pytest.approx(10 / 6)

    def test_density(self, triangle):
        assert triangle.density == pytest.approx(6 / 9)

    def test_neighbors_bounds_checked(self, fig2):
        with pytest.raises(GraphError):
            fig2.neighbors(100)
        with pytest.raises(GraphError):
            fig2.degree(-1)

    def test_has_edge(self, fig2):
        assert fig2.has_edge(0, 1)
        assert not fig2.has_edge(0, 3)

    def test_iter_edges_count(self, fig2):
        assert sum(1 for _ in fig2.iter_edges()) == fig2.num_edges

    def test_is_symmetric(self, fig2):
        assert fig2.is_symmetric()

    def test_asymmetric_detected(self):
        g = CSRGraph.from_edges(3, [0], [1], symmetrize=False)
        assert not g.is_symmetric()


class TestSelfLoops:
    def test_with_self_loops(self, triangle):
        g = triangle.with_self_loops()
        assert g.has_self_loops()
        assert g.num_edges == triangle.num_edges + 3

    def test_with_self_loops_idempotent(self, triangle):
        g = triangle.with_self_loops()
        assert g.with_self_loops().num_edges == g.num_edges

    def test_without_self_loops(self, triangle):
        g = triangle.with_self_loops().without_self_loops()
        assert not g.has_self_loops()
        assert g.num_edges == triangle.num_edges

    def test_plain_graph_has_no_self_loops(self, fig2):
        assert not fig2.has_self_loops()


class TestPermute:
    def test_permute_preserves_structure(self, fig2):
        perm = np.array([5, 4, 3, 2, 1, 0])
        g = fig2.permute(perm)
        assert g.num_edges == fig2.num_edges
        for u, v in fig2.iter_edges():
            assert g.has_edge(int(perm[u]), int(perm[v]))

    def test_identity_permutation(self, fig2):
        g = fig2.permute(np.arange(6))
        assert np.array_equal(g.indices, fig2.indices)

    def test_rejects_non_permutation(self, fig2):
        with pytest.raises(GraphError):
            fig2.permute(np.zeros(6, dtype=int))

    def test_rejects_wrong_length(self, fig2):
        with pytest.raises(GraphError):
            fig2.permute(np.arange(3))


class TestSubgraph:
    def test_subgraph_of_triangle(self, triangle):
        sub = triangle.subgraph(np.array([0, 1]))
        assert sub.num_nodes == 2
        assert sub.num_edges == 2

    def test_subgraph_drops_external_edges(self, star):
        sub = star.subgraph(np.array([1, 2]))
        assert sub.num_edges == 0

    def test_to_dense_matches(self, fig2):
        dense = fig2.to_dense()
        assert dense.sum() == fig2.num_edges
        assert np.array_equal(dense, dense.T)
