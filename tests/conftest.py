"""Shared fixtures: small deterministic graphs, datasets, and models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    GraphBuilder,
    figure2_graph,
    figure7_island_graph,
    hub_island_graph,
    load_dataset,
)
from repro.graph.generators import CommunityProfile
from repro.models import gcn_model


@pytest.fixture
def fig2():
    """The 6-node graph of the paper's Figure 2."""
    return figure2_graph()


@pytest.fixture
def fig7():
    """(graph, island node ids, hub ids) of the paper's Figure 7."""
    return figure7_island_graph()


@pytest.fixture
def triangle():
    """Smallest clique."""
    return GraphBuilder(3).add_clique([0, 1, 2]).build()


@pytest.fixture
def star():
    """Hub with five leaves."""
    return GraphBuilder(6).add_star(0, range(1, 6)).build()


@pytest.fixture
def path4():
    """A 4-node path."""
    return GraphBuilder(4).add_path([0, 1, 2, 3]).build()


@pytest.fixture
def empty_graph():
    """Five isolated nodes."""
    return CSRGraph.empty(5)


@pytest.fixture
def community_graph():
    """A ~300-node hub-and-island graph with known structure."""
    graph, labels = hub_island_graph(
        300,
        CommunityProfile(
            hub_fraction=0.04,
            island_size_mean=6.0,
            island_density=0.8,
            hub_attach_prob=0.7,
            background_fraction=0.02,
        ),
        seed=11,
    )
    return graph, labels


@pytest.fixture(scope="session")
def tiny_cora():
    """Cora surrogate at 10% scale with features (for functional runs)."""
    return load_dataset("cora", scale=0.1, with_features=True, seed=5)


@pytest.fixture(scope="session")
def tiny_cora_model(tiny_cora):
    """2-layer GCN matching the tiny cora dims."""
    return gcn_model(tiny_cora.num_features, tiny_cora.num_classes)


@pytest.fixture
def rng():
    """Deterministic RNG for ad-hoc randomness in tests."""
    return np.random.default_rng(1234)
