"""Conformance battery for the discrete-event pipeline simulator.

Four contracts (ISSUE 10):

* **causality** — every trace replays cleanly through
  :func:`~repro.core.event_sim.validate_trace`: no island starts before
  its release, no release outside its round's locator span, no PE
  serves two units at once, port grants respect the one-per-cycle
  ring/PRC capacity, hub-cache occupancy never exceeds the capacity;
* **determinism** — two runs of the same config produce byte-identical
  traces (:meth:`EventSimResult.trace_bytes`);
* **degenerate graphs** — 0-node, 0-edge, and single-island inputs all
  simulate, validate, and keep the sandwich bound;
* **rejection** — a deliberately corrupted trace raises
  :class:`~repro.errors.SimulationError` (the validator is a real
  check, not a formality).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import ConsumerConfig, IGCNAccelerator, LocatorConfig
from repro.core.event_sim import (
    EventSimResult,
    simulate_events,
    validate_trace,
)
from repro.errors import SimulationError
from repro.graph import CSRGraph, hub_island_graph
from repro.graph.generators import CommunityProfile
from repro.models import gcn_model

MODEL = gcn_model(16, 4)


def _graph(num_nodes=400, seed=7, **profile):
    graph, _ = hub_island_graph(
        num_nodes, CommunityProfile(**profile), seed=seed
    )
    return graph.without_self_loops()


def _run(graph, pipeline, **consumer_kwargs):
    accelerator = IGCNAccelerator(
        locator=LocatorConfig(c_max=16),
        consumer=ConsumerConfig(pipeline=pipeline, **consumer_kwargs),
    )
    return accelerator.run(graph, MODEL)


def _edge_graph(num_nodes, src=(), dst=()):
    return CSRGraph.from_edges(
        num_nodes,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
    )


# ----------------------------------------------------------------------
# Causality + port invariants (via the independent replay)
# ----------------------------------------------------------------------
class TestCausality:
    def test_trace_validates_on_hub_island_graph(self):
        report = _run(_graph(), "event")
        assert report.event is not None
        validate_trace(report.event)

    def test_releases_inside_round_spans(self):
        sim = _run(_graph(), "event").event
        for unit in sim.islands:
            r = unit.round_id - 1
            lo = sim.round_starts[r]
            hi = lo + sim.round_cycles[r]
            assert lo - 1e-6 <= unit.release <= hi + 1e-6
            assert unit.start >= unit.release - 1e-6
            assert unit.completion >= unit.start - 1e-6

    def test_no_pe_serves_two_units_at_once(self):
        # Reconstruct per-PE intervals straight from the records: the
        # primary PE is busy [start, completion] at minimum.
        sim = _run(_graph(), "event").event
        by_pe: dict[int, list[tuple[float, float]]] = {}
        for unit in sim.islands:
            by_pe.setdefault(unit.pe, []).append(
                (unit.start, unit.completion)
            )
        for intervals in by_pe.values():
            intervals.sort()
            for (_, a1), (b0, _) in zip(intervals, intervals[1:]):
                assert b0 >= a1 - 1e-6

    def test_work_conservation(self):
        sim = _run(_graph(), "event").event
        assert np.isclose(sim.work_total, sim.consumer_cycles)
        assert np.isclose(
            sim.busy_pe_cycles, sim.num_pes * sim.work_total
        )

    def test_cache_occupancy_bounded(self):
        sim = _run(_graph(hub_fraction=0.08), "event").event
        assert sim.cache_max_occupancy <= sim.cache_entries
        for event in sim.trace:
            if event[0] == "cache":
                assert event[4] <= sim.cache_entries

    def test_port_grants_spaced_one_cycle(self):
        sim = _run(_graph(hub_fraction=0.08), "event").event
        ring_last: dict[int, float] = {}
        bank_last: dict[int, float] = {}
        for event in sim.trace:
            if event[0] == "ring":
                _, grant, _, _, src, _, _ = event
                if src in ring_last:
                    assert grant >= ring_last[src] + 1.0 - 1e-6
                ring_last[src] = grant
            elif event[0] == "prc":
                _, grant, _, bank, _ = event
                if bank in bank_last:
                    assert grant >= bank_last[bank] + 1.0 - 1e-6
                bank_last[bank] = grant
        assert ring_last and bank_last  # the fixture exercises both


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_traces_byte_identical(self):
        graph = _graph()
        a = _run(graph, "event").event
        b = _run(graph, "event").event
        assert a.trace_bytes() == b.trace_bytes()
        assert a.makespan == b.makespan
        assert a.islands == b.islands

    def test_percentiles_reproducible(self):
        graph = _graph()
        a = _run(graph, "event")
        b = _run(graph, "event")
        assert a.island_p50_us == b.island_p50_us
        assert a.island_p99_us == b.island_p99_us
        assert a.island_p50_us is not None
        assert a.island_p99_us >= a.island_p50_us


# ----------------------------------------------------------------------
# Degenerate graphs + sandwich bound
# ----------------------------------------------------------------------
class TestDegenerate:
    @pytest.mark.parametrize(
        "graph",
        [
            _edge_graph(0),                              # 0 nodes
            _edge_graph(1),                              # single node
            _edge_graph(5),                              # 0 edges
            _edge_graph(3, [0, 1, 1, 2, 2, 0], [1, 0, 2, 1, 0, 2]),
        ],
        ids=["empty", "one-node", "edgeless", "triangle"],
    )
    def test_degenerate_graphs_simulate_and_validate(self, graph):
        staged = _run(graph, "staged")
        streamed = _run(graph, "streamed")
        event = _run(graph, "event")
        validate_trace(event.event)
        assert (
            streamed.total_cycles - 1e-6
            <= event.total_cycles
            <= staged.total_cycles + 1e-6
        )

    def test_empty_graph_has_no_latencies(self):
        sim = _run(_edge_graph(0), "event").event
        assert len(sim.islands) == 0
        assert sim.latency_percentile(50) is None
        assert sim.makespan == 0.0

    def test_single_island_latency_is_its_work(self):
        sim = _run(_edge_graph(1), "event").event
        units = [u for u in sim.islands if u.island_id >= 0]
        assert len(units) == 1
        # Alone on the array, every lane joins: completion - start can
        # shrink to work, never below it.
        assert units[0].completion - units[0].start >= units[0].work - 1e-6

    def test_carrier_rounds_excluded_from_percentiles(self):
        # A triangle is all hubs: its consumer work rides a synthetic
        # carrier (island_id < 0) which must count toward conservation
        # but not toward the per-island latency distribution.
        sim = _run(
            _edge_graph(3, [0, 1, 1, 2, 2, 0], [1, 0, 2, 1, 0, 2]), "event"
        ).event
        carriers = [u for u in sim.islands if u.island_id < 0]
        assert carriers
        assert len(sim.latencies()) == len(sim.islands) - len(carriers)
        assert np.isclose(sim.work_total, sim.consumer_cycles)


# ----------------------------------------------------------------------
# Direct simulate_events edge cases
# ----------------------------------------------------------------------
class TestSimulateEventsAPI:
    def test_no_rounds(self):
        sim = simulate_events([], [], [], num_pes=4)
        assert sim.makespan == 0.0
        validate_trace(sim)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            simulate_events([], [], [], num_pes=0)
        with pytest.raises(SimulationError):
            simulate_events([1.0], [], [], num_pes=2)
        with pytest.raises(SimulationError):
            simulate_events([], [], [], num_pes=2, cache_entries=0)

    def test_tiny_cache_still_bounded(self):
        sim = simulate_events(
            [4.0, 4.0],
            [
                [(0, 2.0, (0, 1, 2)), (1, 1.0, (3,))],
                [(2, 1.0, (0, 4))],
            ],
            [6.0, 3.0],
            num_pes=2,
            cache_entries=2,
        )
        validate_trace(sim)
        assert sim.cache_max_occupancy <= 2
        assert sim.cache_misses >= 3  # capacity 2 cannot hold 5 hubs


# ----------------------------------------------------------------------
# Corrupted-trace rejection
# ----------------------------------------------------------------------
def _corrupt(sim: EventSimResult, mutate) -> EventSimResult:
    """Return a copy of ``sim`` with ``mutate(trace_list)`` applied."""
    trace = [list(event) for event in sim.trace]
    mutate(trace)
    return dataclasses.replace(
        sim, trace=tuple(tuple(event) for event in trace)
    )


class TestCorruptedTraces:
    @pytest.fixture(scope="class")
    def sim(self):
        return _run(_graph(hub_fraction=0.08), "event").event

    def _first_index(self, sim, kind):
        return next(
            i for i, event in enumerate(sim.trace) if event[0] == kind
        )

    def test_clean_trace_passes(self, sim):
        validate_trace(sim)

    def test_dropped_completion_rejected(self, sim):
        i = self._first_index(sim, "complete")

        def mutate(trace):
            del trace[i]

        with pytest.raises(SimulationError, match="event trace invalid"):
            validate_trace(_corrupt(sim, mutate))

    def test_start_before_release_rejected(self, sim):
        i = self._first_index(sim, "start")

        def mutate(trace):
            trace[i][1] = -1.0  # yank the start into the past

        with pytest.raises(SimulationError, match="event trace invalid"):
            validate_trace(_corrupt(sim, mutate))

    def test_double_grant_rejected(self, sim):
        i = self._first_index(sim, "start")

        def mutate(trace):
            trace.insert(i + 1, list(trace[i]))  # same PE granted twice

        with pytest.raises(SimulationError, match="event trace invalid"):
            validate_trace(_corrupt(sim, mutate))

    def test_ring_hop_corruption_rejected(self, sim):
        i = self._first_index(sim, "ring")

        def mutate(trace):
            trace[i][6] += 1  # break the (bank - src) % P topology

        with pytest.raises(SimulationError, match="hop count"):
            validate_trace(_corrupt(sim, mutate))

    def test_overfull_cache_rejected(self, sim):
        i = self._first_index(sim, "cache")

        def mutate(trace):
            trace[i][4] = sim.cache_entries + 1

        with pytest.raises(SimulationError, match="occupancy"):
            validate_trace(_corrupt(sim, mutate))

    def test_tampered_record_rejected(self, sim):
        units = list(sim.islands)
        units[0] = dataclasses.replace(units[0], work=units[0].work + 5.0)
        bad = dataclasses.replace(sim, islands=tuple(units))
        with pytest.raises(SimulationError, match="event trace invalid"):
            validate_trace(bad)

    def test_unknown_kind_rejected(self, sim):
        def mutate(trace):
            trace.append(["teleport", sim.trace[-1][1] + 1.0])

        with pytest.raises(SimulationError, match="unknown event kind"):
            validate_trace(_corrupt(sim, mutate))
