"""Unit tests for GraphBuilder."""

import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder


class TestBuilder:
    def test_add_edge_chains(self):
        b = GraphBuilder(3)
        assert b.add_edge(0, 1) is b

    def test_build_symmetrizes(self):
        g = GraphBuilder(3).add_edge(0, 1).build()
        assert g.has_edge(1, 0)

    def test_build_no_symmetrize(self):
        g = GraphBuilder(3).add_edge(0, 1).build(symmetrize=False)
        assert not g.has_edge(1, 0)

    def test_add_edges_bulk(self):
        g = GraphBuilder(4).add_edges([(0, 1), (2, 3)]).build()
        assert g.num_edges == 4

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).add_edge(0, 5)

    def test_rejects_negative_nodes(self):
        with pytest.raises(GraphError):
            GraphBuilder(-1)

    def test_staged_edge_count(self):
        b = GraphBuilder(3).add_edge(0, 1).add_edge(0, 1)
        assert b.num_staged_edges == 2  # dedup happens at build

    def test_dedup_at_build(self):
        g = GraphBuilder(3).add_edge(0, 1).add_edge(1, 0).build()
        assert g.num_edges == 2


class TestShapes:
    def test_clique(self):
        g = GraphBuilder(4).add_clique(range(4)).build()
        assert g.num_edges == 12
        assert g.max_degree == 3

    def test_star(self):
        g = GraphBuilder(5).add_star(0, [1, 2, 3, 4]).build()
        assert g.degree(0) == 4
        assert all(g.degree(i) == 1 for i in range(1, 5))

    def test_path(self):
        g = GraphBuilder(4).add_path([0, 1, 2, 3]).build()
        assert g.num_edges == 6
        assert g.degree(0) == 1
        assert g.degree(1) == 2

    def test_cycle(self):
        g = GraphBuilder(4).add_cycle([0, 1, 2, 3]).build()
        assert all(g.degree(i) == 2 for i in range(4))

    def test_cycle_needs_three_nodes(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).add_cycle([0, 1])

    def test_self_loop_allowed(self):
        g = GraphBuilder(2).add_edge(0, 0).build()
        assert g.has_self_loops()
