"""Documentation hygiene: the docs subsystem cannot rot silently.

Runs the same checks CI's docs-check job runs, inside the tier-1
suite: every local markdown link across README/ROADMAP/docs resolves,
and the link checker itself behaves (catches a planted broken link).
The generated-CLI-reference freshness check lives in
``tests/test_cli.py`` next to the parser it mirrors.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402  (path set up above)


def test_repo_docs_have_no_broken_links():
    paths = [REPO_ROOT / name for name in check_docs.DEFAULT_DOCS]
    assert check_docs.check(paths) == []


def test_docs_directory_is_checked():
    files = check_docs.iter_doc_files([REPO_ROOT / "docs"])
    names = {f.name for f in files}
    assert {"architecture.md", "benchmarks.md", "cli.md"} <= names


def test_checker_catches_broken_link(tmp_path):
    doc = tmp_path / "page.md"
    doc.write_text(
        "ok: [here](other.md), broken: [gone](missing.md), "
        "external: [x](https://example.com), anchor: [a](#section)\n"
    )
    (tmp_path / "other.md").write_text("hi\n")
    problems = check_docs.check([tmp_path])
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_checker_handles_anchored_file_links(tmp_path):
    doc = tmp_path / "page.md"
    doc.write_text("[sect](other.md#heading)\n")
    (tmp_path / "other.md").write_text("# heading\n")
    assert check_docs.check([tmp_path]) == []


def test_cli_rejects_misnamed_explicit_files(tmp_path, capsys):
    # A typo'd explicit argument must fail loudly, not pass silently.
    good = tmp_path / "good.md"
    good.write_text("no links\n")
    assert check_docs.main([str(good)]) == 0
    capsys.readouterr()
    assert check_docs.main([str(tmp_path / "typo.md")]) == 1
    assert "not found" in capsys.readouterr().err
    notes = tmp_path / "notes.txt"
    notes.write_text("plain text\n")
    assert check_docs.main([str(notes)]) == 1
    assert "not a .md file" in capsys.readouterr().err
