"""Tests for partitioned-incremental islandization: delta routing.

The load-bearing contract mirrors the monolithic incremental suite but
against the *pinned-partition oracle*: on every tested delta — interior
churn, brand-new cross-shard edges, separator destruction, empty
shards, every fallback — the shard-routed update must satisfy
``IslandizationResult.equals`` against ``ShardFleet.rerecord`` (a full
fleet re-record of the mutated graph on the evolved pinned partition),
and the refreshed per-shard states must match that re-record's fresh
recordings field for field.
"""

from __future__ import annotations

import dataclasses
import io

import numpy as np
import pytest

from repro.core import LocatorConfig
from repro.core.islandizer_incremental import (
    IncrementalState,
    record_islandization,
    update_islandization,
)
from repro.core.islandizer_pincremental import (
    PartitionedIncrementalState,
    ShardFleet,
    load_ilstate,
    update_islandization_partitioned,
)
from repro.errors import ConfigError, IslandizationError
from repro.graph import CSRGraph
from repro.graph.csr import GraphDelta
from repro.graph.partition import ROUTE_CROSS, route_edits
from repro.runtime import Engine

# ----------------------------------------------------------------------
# Helpers (mirroring test_incremental's freshness machinery)
# ----------------------------------------------------------------------

CFG = LocatorConfig(th0=8, partitions=3, incremental=True)

_STATE_FIELDS = (
    "log_hubs", "log_seeds", "log_scans", "log_fetches", "log_bytes",
    "log_outcomes", "log_offsets", "class_round", "island_round",
    "island_seed", "island_size", "winner_hubs",
)


def random_graph(rng, n, avg_deg):
    k = n * avg_deg // 2
    rows = rng.integers(0, n, k)
    cols = rng.integers(0, n, k)
    keep = rows != cols
    return CSRGraph.from_edges(n, rows[keep], cols[keep], name="rnd")


def canon(labels):
    out = np.full(len(labels), -1, np.int64)
    first: dict[int, int] = {}
    for i, v in enumerate(labels.tolist()):
        if v < 0:
            continue
        if v not in first:
            first[v] = len(first)
        out[i] = first[v]
    return out


def assert_partitioned_fresh(upd_state, fresh_state):
    """The updated state must match the re-record's fresh recordings.

    Exact for everything except ``comp_labels``, whose values the
    incremental path relabels with fresh ids (the induced partition
    must still agree) — same contract as the monolithic suite.
    """
    assert upd_state.th0 == fresh_state.th0
    assert np.array_equal(upd_state.part_of, fresh_state.part_of)
    assert np.array_equal(
        upd_state.boundary_nodes, fresh_state.boundary_nodes
    )
    assert upd_state.num_shards == fresh_state.num_shards
    for p in range(upd_state.num_shards):
        assert np.array_equal(
            upd_state.shard_nodes[p], fresh_state.shard_nodes[p]
        )
        ours, fresh = upd_state.shard_states[p], fresh_state.shard_states[p]
        assert ours.th0 == fresh.th0, p
        for field in _STATE_FIELDS:
            assert np.array_equal(
                getattr(ours, field), getattr(fresh, field)
            ), (p, field)
        assert np.array_equal(
            canon(ours.comp_labels), canon(fresh.comp_labels)
        ), p


def assert_exact(fleet, state, graph, delta, upd):
    """Oracle equality + per-shard state freshness for one update."""
    mutated = graph.apply_delta(delta)
    scratch, fresh_state = fleet.rerecord(mutated, state)
    assert upd.result.equals(scratch)
    upd.result.validate()
    assert_partitioned_fresh(upd.state, fresh_state)
    return mutated


def absent_pair(graph, nodes_a, nodes_b):
    """Some absent edge with one endpoint in each node pool."""
    es = set(graph.edge_keys().tolist())
    n = graph.num_nodes
    for u in nodes_a[:80]:
        for v in nodes_b[:80]:
            u, v = int(u), int(v)
            if u != v and min(u, v) * n + max(u, v) not in es:
                return u, v
    raise AssertionError("no absent pair found")


def interior_edges(graph, state, p):
    """Global (u, v) pairs of every interior edge of shard ``p``."""
    local = state.shard_results[p].graph
    nodes = state.shard_nodes[p]
    keys = local.edge_keys()
    lu, lv = keys // local.num_nodes, keys % local.num_nodes
    keep = lu < lv
    return np.stack([nodes[lu[keep]], nodes[lv[keep]]], axis=1)


# ----------------------------------------------------------------------
# Fixtures: one recorded fleet shared by the routing tests
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet():
    with ShardFleet(CFG) as f:
        yield f


@pytest.fixture(scope="module")
def recorded(fleet):
    graph = random_graph(np.random.default_rng(17), 300, 5)
    result, state = fleet.record(graph)
    return graph, result, state


# ----------------------------------------------------------------------
# Routing edge cases
# ----------------------------------------------------------------------


class TestRouting:
    def test_interior_edit_updates_one_shard_splices_the_rest(
        self, fleet, recorded
    ):
        graph, result, state = recorded
        u, v = absent_pair(graph, state.shard_nodes[0], state.shard_nodes[0])
        delta = GraphDelta.from_edges(
            insertions=np.array([[u, v]], dtype=np.int64)
        )
        upd = fleet.update(
            graph, result, state, delta, max_dirty_fraction=1.0
        )
        assert not upd.fallback
        assert upd.dirty_shards == (0,)
        # Untouched shards splice by reference, not by copy.
        for q in (1, 2):
            assert upd.state.shard_results[q] is state.shard_results[q]
            assert upd.state.shard_states[q] is state.shard_states[q]
        assert_exact(fleet, state, graph, delta, upd)

    def test_new_cross_shard_edge_promotes_both_endpoints(
        self, fleet, recorded
    ):
        graph, result, state = recorded
        u, v = absent_pair(graph, state.shard_nodes[0], state.shard_nodes[1])
        route, _ = route_edits(
            state.part_of,
            np.array([u], dtype=np.int64),
            np.array([v], dtype=np.int64),
        )
        assert route[0] == ROUTE_CROSS  # the construction really crosses
        delta = GraphDelta.from_edges(
            insertions=np.array([[u, v]], dtype=np.int64)
        )
        upd = fleet.update(
            graph, result, state, delta, max_dirty_fraction=1.0
        )
        assert not upd.fallback
        # Both endpoints joined the separator (sticky), their shards
        # re-recorded on shrunken interiors.
        assert upd.state.part_of[u] == -1 and upd.state.part_of[v] == -1
        assert u in upd.state.boundary_nodes and v in upd.state.boundary_nodes
        assert upd.dirty_shards == (0, 1)
        assert u not in upd.state.shard_nodes[0]
        assert v not in upd.state.shard_nodes[1]
        assert_exact(fleet, state, graph, delta, upd)

    def test_separator_hub_destruction_stays_boundary(self, fleet, recorded):
        graph, result, state = recorded
        boundary = state.boundary_nodes
        degs = graph.degrees[boundary]
        b = int(boundary[int(np.argmax(degs))])
        assert graph.degrees[b] > 0
        dels = np.array(
            [[b, int(w)] for w in graph.neighbors(b)], dtype=np.int64
        )
        delta = GraphDelta.from_edges(deletions=dels)
        upd = fleet.update(
            graph, result, state, delta, max_dirty_fraction=1.0
        )
        assert not upd.fallback
        # Boundary-incident edits dirty no shard: interiors are
        # untouched, only the merge re-runs.
        assert upd.dirty_shards == ()
        # Separator membership is sticky even at degree zero.
        assert upd.state.part_of[b] == -1
        assert b in upd.state.boundary_nodes
        assert_exact(fleet, state, graph, delta, upd)

    def test_delta_confined_to_emptied_shard(self, fleet, recorded):
        graph, result, state = recorded
        p = int(np.argmin([
            state.shard_results[q].graph.num_edges
            for q in range(state.num_shards)
        ]))
        edges = interior_edges(graph, state, p)
        assert len(edges)  # shard starts non-empty
        upd1 = fleet.update(
            graph, result, state,
            GraphDelta.from_edges(deletions=edges),
            max_dirty_fraction=1.0,
        )
        assert not upd1.fallback and upd1.dirty_shards == (p,)
        graph2 = assert_exact(
            fleet, state, graph,
            GraphDelta.from_edges(deletions=edges), upd1,
        )
        assert upd1.state.shard_results[p].graph.num_edges == 0
        # A second delta confined to the now-edgeless shard interior.
        nodes = upd1.state.shard_nodes[p]
        u, v = absent_pair(graph2, nodes, nodes)
        delta2 = GraphDelta.from_edges(
            insertions=np.array([[u, v]], dtype=np.int64)
        )
        upd2 = fleet.update(
            graph2, upd1.result, upd1.state, delta2,
            max_dirty_fraction=1.0,
        )
        assert not upd2.fallback and upd2.dirty_shards == (p,)
        assert_exact(fleet, upd1.state, graph2, delta2, upd2)

    def test_cross_shard_delete_rejected(self, fleet, recorded):
        graph, result, state = recorded
        u, v = interior_edges(graph, state, 0)[0]
        # Lie about the partition: pretend v is interior to shard 1, so
        # the recorded state no longer matches the graph it claims to
        # describe — the router must refuse, not mis-splice.
        part_of = state.part_of.copy()
        part_of[v] = 1
        tampered = dataclasses.replace(state, part_of=part_of)
        delta = GraphDelta.from_edges(
            deletions=np.array([[u, v]], dtype=np.int64)
        )
        with pytest.raises(IslandizationError, match="crosses shard"):
            fleet.update(graph, result, tampered, delta)

    def test_empty_effective_delta_rebinds(self, fleet, recorded):
        graph, result, state = recorded
        u, v = interior_edges(graph, state, 0)[0]
        es = set(graph.edge_keys().tolist())
        n = graph.num_nodes
        a = next(
            i for i in range(n)
            if i != u and u * n + i not in es and i * n + u not in es
        )
        delta = GraphDelta.from_edges(
            insertions=np.array([[u, v]], dtype=np.int64),   # present
            deletions=np.array([[u, a]], dtype=np.int64),    # absent
        )
        upd = fleet.update(graph, result, state, delta)
        assert not upd.fallback
        assert upd.dirty_shards == ()
        assert upd.dirty_nodes == 0 and upd.region_nodes == 0
        assert upd.result.equals(result)
        assert upd.state is state


# ----------------------------------------------------------------------
# Fallbacks
# ----------------------------------------------------------------------


class TestFallbacks:
    def test_all_shards_dirty_falls_back(self, fleet, recorded):
        graph, result, state = recorded
        pairs = [
            absent_pair(graph, state.shard_nodes[p], state.shard_nodes[p])
            for p in range(state.num_shards)
        ]
        delta = GraphDelta.from_edges(
            insertions=np.array(pairs, dtype=np.int64)
        )
        upd = fleet.update(
            graph, result, state, delta, max_dirty_fraction=0.0
        )
        assert upd.fallback
        assert "dirty shards cover 3/3 shards" in upd.fallback_reason
        assert upd.dirty_shards == (0, 1, 2)
        assert_exact(fleet, state, graph, delta, upd)

    def test_th0_move_falls_back_after_partition_evolution(self):
        # A delta that both moves the quantile TH0 *and* inserts a
        # cross-shard edge: the fallback must re-record against the
        # evolved partition (endpoints promoted), or the re-recorded
        # islands would straddle shard interiors and fail validation.
        cfg = LocatorConfig(
            th0=None, th0_quantile=0.75, partitions=3, incremental=True
        )
        graph = random_graph(np.random.default_rng(23), 300, 5)
        with ShardFleet(cfg) as fleet:
            result, state = fleet.record(graph)
            cu, cv = absent_pair(
                graph, state.shard_nodes[0], state.shard_nodes[1]
            )
            es = set(graph.edge_keys().tolist())
            n = graph.num_nodes
            # Densify: a few absent ring edges per node lift (almost)
            # every degree, dragging the quantile TH0 upward.
            extra = []
            for off in (1, 2, 3):
                for i in range(n):
                    j = (i + off) % n
                    u, v = min(i, j), max(i, j)
                    if u * n + v not in es:
                        es.add(u * n + v)
                        extra.append([u, v])
            delta = GraphDelta.from_edges(
                insertions=np.array([[cu, cv]] + extra, dtype=np.int64)
            )
            mutated = graph.apply_delta(delta)
            assert (
                int(cfg.initial_threshold(mutated.degrees)) != state.th0
            )  # the construction really moves TH0
            upd = fleet.update(
                graph, result, state, delta, max_dirty_fraction=1.0
            )
            assert upd.fallback
            assert "threshold moved" in upd.fallback_reason
            assert upd.state.part_of[cu] == -1  # evolved before fallback
            assert upd.state.part_of[cv] == -1
            assert_exact(fleet, state, graph, delta, upd)

    def test_wrong_fleet_config_rejected(self, fleet, recorded):
        graph, result, state = recorded
        other = LocatorConfig(th0=9, partitions=3, incremental=True)
        delta = GraphDelta.from_edges(
            deletions=interior_edges(graph, state, 0)[:1]
        )
        with pytest.raises(ConfigError, match="different locator config"):
            update_islandization_partitioned(
                graph, result, state, delta, other, fleet=fleet
            )


# ----------------------------------------------------------------------
# partitions=1 bit-identity + serialization
# ----------------------------------------------------------------------


class TestExactness:
    def test_partitions_one_is_bit_identical_to_monolithic(self):
        graph = random_graph(np.random.default_rng(29), 200, 5)
        one = LocatorConfig(th0=8, partitions=1, incremental=True)
        plain = LocatorConfig(th0=8, incremental=True)
        r1, s1 = record_islandization(graph, one)
        r2, s2 = record_islandization(graph, plain)
        assert type(s1) is IncrementalState and type(s2) is IncrementalState
        assert r1.equals(r2)
        assert s1.th0 == s2.th0
        for field in _STATE_FIELDS + ("comp_labels",):
            a, b = getattr(s1, field), getattr(s2, field)
            assert a.dtype == b.dtype and a.tobytes() == b.tobytes(), field
        delta = GraphDelta.from_edges(
            deletions=np.stack(
                [graph.edge_keys()[:2] // graph.num_nodes,
                 graph.edge_keys()[:2] % graph.num_nodes], axis=1
            )
        )
        u1 = update_islandization(graph, r1, s1, delta, one)
        u2 = update_islandization(graph, r2, s2, delta, plain)
        assert u1.result.equals(u2.result)

    def test_state_npz_round_trip_and_dispatch(self, fleet, recorded):
        graph, result, state = recorded
        buf = io.BytesIO()
        state.to_npz(buf)
        payload = buf.getvalue()
        loaded = PartitionedIncrementalState.from_npz(io.BytesIO(payload))
        buf2 = io.BytesIO()
        loaded.to_npz(buf2)
        assert buf2.getvalue() == payload  # byte-identical round trip
        # load_ilstate dispatches on the format tag for both flavours.
        assert isinstance(
            load_ilstate(io.BytesIO(payload)), PartitionedIncrementalState
        )
        mono_buf = io.BytesIO()
        _, mono_state = record_islandization(
            graph, LocatorConfig(th0=8, incremental=True)
        )
        mono_state.to_npz(mono_buf)
        mono_buf.seek(0)
        assert isinstance(load_ilstate(mono_buf), IncrementalState)
        with pytest.raises(IslandizationError, match="format"):
            bad = io.BytesIO()
            from repro.serialize import write_npz
            write_npz(bad, {"x": np.zeros(1)}, {"format": 99})
            bad.seek(0)
            load_ilstate(bad)

    def test_round_tripped_state_still_updates(self, fleet, recorded):
        graph, result, state = recorded
        buf = io.BytesIO()
        state.to_npz(buf)
        buf.seek(0)
        loaded = PartitionedIncrementalState.from_npz(buf)
        u, v = absent_pair(graph, state.shard_nodes[2], state.shard_nodes[2])
        delta = GraphDelta.from_edges(
            insertions=np.array([[u, v]], dtype=np.int64)
        )
        upd = fleet.update(
            graph, result, loaded, delta, max_dirty_fraction=1.0
        )
        assert not upd.fallback and upd.dirty_shards == (2,)
        assert_exact(fleet, loaded, graph, delta, upd)


# ----------------------------------------------------------------------
# Engine wiring
# ----------------------------------------------------------------------


class TestEngineWiring:
    def test_partitioned_update_chains_and_persists(self, tmp_path):
        graph = random_graph(np.random.default_rng(31), 240, 5)
        cfg = LocatorConfig(th0=8, partitions=2, incremental=True)
        with Engine(locator=cfg, cache_dir=str(tmp_path)) as engine:
            result, state = engine.islandization_state(graph)
            assert isinstance(state, PartitionedIncrementalState)
            u, v = absent_pair(
                graph, state.shard_nodes[0], state.shard_nodes[0]
            )
            delta = GraphDelta.from_edges(
                insertions=np.array([[u, v]], dtype=np.int64)
            )
            upd = engine.update(graph, delta, max_dirty_fraction=1.0)
            assert upd.dirty_shards == (0,)
            misses = engine.cache_stats()["ilstate"].misses
            upd2 = engine.update(
                upd.result.graph,
                GraphDelta.from_edges(
                    deletions=np.array([[u, v]], dtype=np.int64)
                ),
                max_dirty_fraction=1.0,
            )
            assert engine.cache_stats()["ilstate"].misses == misses
            assert upd2.dirty_shards == (0,)
        # A fresh engine reloads the partitioned state from disk
        # through the dispatching ilstate codec.
        with Engine(locator=cfg, cache_dir=str(tmp_path)) as warm:
            warm_result, warm_state = warm.islandization_state(graph)
            assert warm.cache_stats()["ilstate"].misses == 0
            assert warm_result.equals(result)
            assert isinstance(warm_state, PartitionedIncrementalState)
            assert np.array_equal(warm_state.part_of, state.part_of)
