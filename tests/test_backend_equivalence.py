"""Batched-vs-scalar locator backend equivalence.

The batched TP-BFS kernel's contract is *exact* result equality with
the scalar oracle: identical islands (ids, rounds, member discovery
order, hub first-contact order), hub lists, inter-hub edge maps,
per-round statistics, and work counters including the per-engine scan
distribution.  These tests pin that contract across graph families
(hub-island community, Erdős–Rényi, power-law, grids, chains, cliques,
stars), degenerate inputs, and adversarial configs (tiny and huge
``c_max``, forced threshold schedules), plus a hypothesis sweep over
random graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IslandLocator, LocatorConfig, islandize
from repro.errors import ConfigError
from repro.graph import CSRGraph, GraphBuilder, erdos_renyi, hub_island_graph
from repro.graph.generators import CommunityProfile, barabasi_albert


def both(graph, **config_kwargs):
    """Run both backends; returns (scalar result, batched result)."""
    scalar = islandize(graph, LocatorConfig(backend="scalar", **config_kwargs))
    batched = islandize(graph, LocatorConfig(backend="batched", **config_kwargs))
    return scalar, batched


def assert_equivalent(graph, **config_kwargs):
    scalar, batched = both(graph, **config_kwargs)
    assert scalar.equals(batched), _diff(scalar, batched)
    batched.validate()


def _diff(a, b):
    """Human-readable first divergence, for assertion messages."""
    if len(a.islands) != len(b.islands):
        return f"island count {len(a.islands)} != {len(b.islands)}"
    for i, (x, y) in enumerate(zip(a.islands, b.islands)):
        if not np.array_equal(x.members, y.members):
            return f"island {i} members {x.members} != {y.members}"
        if not np.array_equal(x.hubs, y.hubs):
            return f"island {i} hubs {x.hubs} != {y.hubs}"
    if not np.array_equal(a.hub_ids, b.hub_ids):
        return "hub_ids differ"
    if not np.array_equal(a.interhub_edges, b.interhub_edges):
        return "interhub edges differ"
    for ra, rb in zip(a.rounds, b.rounds):
        if ra != rb:
            return f"round {ra.round_id}: {ra} != {rb}"
    return "work counters differ"


def grid_graph(width, height):
    """4-neighbour grid — long thin components, many BFS levels."""
    builder = GraphBuilder(width * height)
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x + 1 < width:
                builder.add_edge(node, node + 1)
            if y + 1 < height:
                builder.add_edge(node, node + width)
    return builder.build()


class TestGraphFamilies:
    @pytest.mark.parametrize("seed", range(4))
    def test_hub_island(self, seed):
        graph, _ = hub_island_graph(
            400,
            CommunityProfile(hub_fraction=0.04, background_fraction=0.03),
            seed=seed,
        )
        assert_equivalent(graph.without_self_loops())

    @pytest.mark.parametrize("seed", range(4))
    def test_erdos_renyi(self, seed):
        # Random graphs force the over-c_max walk path: giant active
        # components with cap aborts and collision walks.
        assert_equivalent(erdos_renyi(250, 4.0, seed=seed).without_self_loops())

    @pytest.mark.parametrize("seed", range(3))
    def test_power_law(self, seed):
        assert_equivalent(
            barabasi_albert(300, 3, seed=seed).without_self_loops()
        )

    def test_grid(self):
        assert_equivalent(grid_graph(20, 15))

    def test_grid_small_cmax(self):
        assert_equivalent(grid_graph(20, 15), c_max=5)

    def test_noisy_community_small_cmax(self):
        graph, _ = hub_island_graph(
            600,
            CommunityProfile(background_fraction=0.1, background_hub_bias=0.2),
            seed=9,
        )
        assert_equivalent(graph.without_self_loops(), c_max=16)


class TestDegenerateGraphs:
    def test_zero_nodes(self):
        assert_equivalent(CSRGraph.empty(0))

    def test_isolated_nodes_only(self):
        assert_equivalent(CSRGraph.empty(7))

    def test_star(self, star):
        assert_equivalent(star, th0=3)

    def test_clique_cmax_splits(self):
        assert_equivalent(
            GraphBuilder(40).add_clique(range(40)).build(), c_max=8
        )

    def test_chain_at_th_min_1(self):
        # th0 above every degree: nothing classifies until th_min=1,
        # where all chain nodes become hubs at once.
        assert_equivalent(
            GraphBuilder(50).add_path(range(50)).build(), th0=7, th_min=1
        )

    def test_hub_fan_into_chain_cmax_aborts(self):
        graph = (
            GraphBuilder(31).add_star(0, range(1, 6)).add_path(range(1, 31))
        ).build()
        assert_equivalent(graph, th0=5, c_max=4)

    def test_two_node_components(self):
        builder = GraphBuilder(10)
        for i in range(0, 10, 2):
            builder.add_edge(i, i + 1)
        assert_equivalent(builder.build())

    def test_fig7(self, fig7):
        graph, _, _ = fig7
        assert_equivalent(graph, th0=4)


class TestConfigSweep:
    @pytest.mark.parametrize("c_max", [1, 2, 8, 64, 600, 100000])
    def test_cmax_extremes(self, c_max):
        # c_max >= 512 routes over-cap walks through the level-wise
        # kernel instead of the per-edge walker — both must be exact.
        graph = erdos_renyi(300, 5.0, seed=2).without_self_loops()
        assert_equivalent(graph, c_max=c_max)

    @pytest.mark.parametrize("decay", [0.3, 0.5, 0.9])
    def test_decay_schedules(self, decay, community_graph):
        graph, _ = community_graph
        assert_equivalent(graph.without_self_loops(), decay=decay)

    def test_backend_rejected_when_unknown(self):
        with pytest.raises(ConfigError):
            LocatorConfig(backend="simd")

    def test_default_backend_is_batched(self):
        assert LocatorConfig().backend == "batched"
        assert IslandLocator().config.backend == "batched"

    def test_backend_is_part_of_config_digest(self):
        # Cached artifacts keyed by config digest must never mix
        # backends (shared artifact stores across processes).
        from repro.serialize import config_digest

        assert config_digest(LocatorConfig(backend="batched")) != config_digest(
            LocatorConfig(backend="scalar")
        )


class TestEquals:
    """The equality predicate itself must be discriminating."""

    def test_equals_self(self, community_graph):
        graph, _ = community_graph
        result = islandize(graph.without_self_loops())
        assert result.equals(result)

    def test_detects_different_configs(self, community_graph):
        graph, _ = community_graph
        clean = graph.without_self_loops()
        a = islandize(clean, LocatorConfig(c_max=8))
        b = islandize(clean, LocatorConfig(c_max=64))
        assert not a.equals(b)


@settings(max_examples=30, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=80),
    num_edges=st.integers(min_value=0, max_value=300),
    c_max=st.integers(min_value=1, max_value=100),
    edge_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_graphs_property(num_nodes, num_edges, c_max, edge_seed):
    """Hypothesis sweep: arbitrary symmetric graphs and caps agree."""
    rng = np.random.default_rng(edge_seed)
    rows = rng.integers(0, num_nodes, size=num_edges)
    cols = rng.integers(0, num_nodes, size=num_edges)
    keep = rows != cols
    graph = CSRGraph.from_edges(num_nodes, rows[keep], cols[keep], name="hyp")
    scalar, batched = both(graph, c_max=c_max)
    assert scalar.equals(batched), _diff(scalar, batched)
    batched.validate()
