"""The streamed pipeline's exact-equivalence and overlap contracts.

Three guarantees (ISSUE 5 / §3.1.1, Fig. 3):

* the locator's streaming interface is the *implementation* of the
  monolithic one — draining :meth:`IslandLocator.stream` (or replaying
  :meth:`IslandizationResult.iter_rounds`) reproduces the exact same
  result, for both Th3 backends;
* a streamed inference is byte-identical to a staged one — islands,
  per-layer counts, DRAM traffic, ring/cache statistics, and
  functional outputs — under both locator and consumer backends, live
  or replayed from a cached islandization;
* only the overlap model differs: staged cycles are the strict
  back-to-back sum, streamed cycles the measured release/work
  makespan, strictly below staged whenever the locator spends cycles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConsumerConfig,
    IGCNAccelerator,
    IslandConsumer,
    IslandLocator,
    LocatorConfig,
)
from repro.core.consumer import execution_mismatch
from repro.core.interhub import build_interhub_plan
from repro.errors import ConfigError
from repro.graph import hub_island_graph, load_dataset
from repro.graph.generators import CommunityProfile
from repro.hw.memory import TrafficMeter
from repro.models import gcn_model
from repro.models.reference import normalization_for
from repro.serialize import config_digest

BACKENDS = ("batched", "scalar")


@pytest.fixture(scope="module")
def stream_graph():
    """A multi-round hub-and-island graph (self-loop-free)."""
    graph, _ = hub_island_graph(
        400,
        CommunityProfile(
            hub_fraction=0.05,
            island_size_mean=7.0,
            island_density=0.8,
            hub_attach_prob=0.7,
            background_fraction=0.02,
        ),
        seed=3,
    )
    return graph.without_self_loops()


def _accelerator(locator_backend, consumer_backend, pipeline):
    return IGCNAccelerator(
        locator=LocatorConfig(backend=locator_backend),
        consumer=ConsumerConfig(backend=consumer_backend, pipeline=pipeline),
    )


# ----------------------------------------------------------------------
# Locator streaming protocol
# ----------------------------------------------------------------------
class TestLocatorStream:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stream_drain_equals_run(self, stream_graph, backend):
        config = LocatorConfig(backend=backend)
        direct = IslandLocator(config).run(stream_graph)
        stream = IslandLocator(config).stream(stream_graph)
        chunks = []
        while True:
            try:
                chunks.append(next(stream))
            except StopIteration as stop:
                streamed = stop.value
                break
        assert direct.equals(streamed)
        assert len(chunks) == streamed.num_rounds

    def test_round_outputs_partition_islands(self, stream_graph):
        chunks = []
        result = IslandLocator().run(stream_graph, on_round=chunks.append)
        flattened = [isl for chunk in chunks for isl in chunk.islands]
        # Same objects, same order: the chunks are slices of the result.
        assert [id(i) for i in flattened] == [id(i) for i in result.islands]
        for chunk in chunks:
            assert chunk.stats is result.rounds[chunk.round_id - 1]
            for island in chunk.islands:
                assert island.round_id == chunk.round_id
        hub_ids = np.concatenate([c.new_hub_ids for c in chunks])
        assert np.array_equal(hub_ids, result.hub_ids)

    def test_iter_rounds_replays_live_stream(self, stream_graph):
        live_chunks = []
        result = IslandLocator().run(stream_graph, on_round=live_chunks.append)
        replayed = list(result.iter_rounds())
        assert len(replayed) == len(live_chunks)
        for live, replay in zip(live_chunks, replayed):
            assert replay.round_id == live.round_id
            assert replay.stats == live.stats
            assert replay.first_island_id == live.first_island_id
            assert [id(i) for i in replay.islands] == [
                id(i) for i in live.islands
            ]
            assert np.array_equal(replay.new_hub_ids, live.new_hub_ids)

    def test_callback_sees_rounds_in_order(self, stream_graph):
        seen = []
        IslandLocator().run(
            stream_graph, on_round=lambda c: seen.append(c.round_id)
        )
        assert seen == sorted(seen)
        assert seen[0] == 1


# ----------------------------------------------------------------------
# Chunked consumer execution (unit level)
# ----------------------------------------------------------------------
class TestChunkedConsumer:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("functional", (False, True))
    def test_chunked_equals_monolithic(self, stream_graph, backend, functional):
        result = IslandLocator().run(stream_graph)
        norm = normalization_for(stream_graph, "gcn-sym")
        plan = build_interhub_plan(result, add_self_loops=norm.add_self_loops)
        model = gcn_model(12, 4)
        layer = model.layers[0]
        rng = np.random.default_rng(0)
        x = (
            rng.normal(size=(stream_graph.num_nodes, layer.in_dim))
            if functional else None
        )
        w = (
            rng.normal(size=(layer.in_dim, layer.out_dim))
            if functional else None
        )

        whole = IslandConsumer(ConsumerConfig(backend=backend))
        tasks = whole.prepare(result, add_self_loops=norm.add_self_loops)
        meter_a = TrafficMeter()
        exec_a = whole.run_layer(
            result, tasks, plan, norm, layer,
            layer_index=0, meter=meter_a, x=x, w=w,
        )

        chunked = IslandConsumer(ConsumerConfig(backend=backend))
        chunks = [
            chunked.prepare_chunk(
                stream_graph, ro.islands, add_self_loops=norm.add_self_loops
            )
            for ro in result.iter_rounds()
        ]
        meter_b = TrafficMeter()
        chunk_work: list[int] = []
        exec_b = chunked.run_layer_chunked(
            result, chunks, plan, norm, layer,
            layer_index=0, meter=meter_b, x=x, w=w, chunk_work=chunk_work,
        )
        assert execution_mismatch(
            exec_a, meter_a, exec_b, meter_b, functional=functional
        ) is None
        assert whole.ring.stats == chunked.ring.stats
        # The measured per-round work tallies cover the layer's
        # aggregation MACs exactly (inter-hub work excluded: it only
        # runs once the locator has finished).
        assert len(chunk_work) == result.num_rounds
        assert sum(chunk_work) == exec_b.counts.scan.total_ops * layer.out_dim


# ----------------------------------------------------------------------
# End-to-end: streamed vs staged
# ----------------------------------------------------------------------
class TestStreamedEquivalence:
    @pytest.mark.parametrize("locator_backend", BACKENDS)
    @pytest.mark.parametrize("consumer_backend", BACKENDS)
    def test_counts_traffic_identical(
        self, stream_graph, locator_backend, consumer_backend
    ):
        model = gcn_model(16, 4)
        staged = _accelerator(
            locator_backend, consumer_backend, "staged"
        ).run(stream_graph, model)
        streamed = _accelerator(
            locator_backend, consumer_backend, "streamed"
        ).run(stream_graph, model)
        assert staged.islandization.equals(streamed.islandization)
        assert staged.layers == streamed.layers
        assert staged.meter.reads == streamed.meter.reads
        assert staged.meter.writes == streamed.meter.writes
        assert staged.locator_cycles == streamed.locator_cycles
        assert staged.consumer_cycles == streamed.consumer_cycles

    @pytest.mark.parametrize("consumer_backend", BACKENDS)
    def test_functional_outputs_byte_identical(self, tiny_cora, consumer_backend):
        model = gcn_model(tiny_cora.num_features, tiny_cora.num_classes)
        reports = {
            pipeline: _accelerator("batched", consumer_backend, pipeline).run(
                tiny_cora.graph, model,
                functional=True, features=tiny_cora.features,
            )
            for pipeline in ("staged", "streamed")
        }
        a, b = reports["staged"], reports["streamed"]
        assert a.outputs.dtype == b.outputs.dtype
        assert a.outputs.tobytes() == b.outputs.tobytes()
        assert a.layers == b.layers

    def test_replayed_cache_equals_live_stream(self, stream_graph):
        """A cached islandization must replay to the same streamed report."""
        model = gcn_model(16, 4)
        accelerator = _accelerator("batched", "batched", "streamed")
        live = accelerator.run(stream_graph, model)
        cached = accelerator.run(
            stream_graph, model,
            islandization=IslandLocator().run(stream_graph),
        )
        assert live.layers == cached.layers
        assert live.total_cycles == cached.total_cycles
        assert live.meter.reads == cached.meter.reads


class TestOverlapModel:
    def test_streamed_strictly_below_staged(self, stream_graph):
        model = gcn_model(16, 4)
        staged = _accelerator("batched", "batched", "staged").run(
            stream_graph, model
        )
        streamed = _accelerator("batched", "batched", "streamed").run(
            stream_graph, model
        )
        assert streamed.total_cycles < staged.total_cycles
        assert streamed.overlap_saved_cycles > 0.0
        assert staged.overlap_saved_cycles == 0.0

    def test_staged_is_sum_of_phases(self, stream_graph):
        model = gcn_model(16, 4)
        report = _accelerator("batched", "batched", "staged").run(
            stream_graph, model
        )
        assert report.total_cycles == pytest.approx(
            report.locator_cycles + report.consumer_cycles
            + IGCNAccelerator.PIPELINE_FILL_CYCLES
        )
        assert report.pipeline == "staged"

    def test_streamed_bounded_by_phases(self, stream_graph):
        model = gcn_model(16, 4)
        report = _accelerator("batched", "batched", "streamed").run(
            stream_graph, model
        )
        fill = IGCNAccelerator.PIPELINE_FILL_CYCLES
        assert report.pipeline == "streamed"
        assert report.total_cycles >= max(
            report.consumer_cycles, report.locator_cycles
        ) + fill
        assert report.total_cycles <= (
            report.locator_cycles + report.consumer_cycles + fill
        )

    def test_degenerate_graph_modes_agree(self):
        from repro.graph import CSRGraph

        model = gcn_model(4, 2)
        graph = CSRGraph.empty(0)
        staged = _accelerator("batched", "batched", "staged").run(graph, model)
        streamed = _accelerator("batched", "batched", "streamed").run(
            graph, model
        )
        assert staged.total_cycles == streamed.total_cycles


# ----------------------------------------------------------------------
# Cache-key separation
# ----------------------------------------------------------------------
class TestPipelineCaching:
    def test_pipeline_mode_changes_config_digest(self):
        assert config_digest(
            ConsumerConfig(pipeline="streamed")
        ) != config_digest(ConsumerConfig(pipeline="staged"))

    def test_engine_cell_keys_distinct(self):
        from repro.runtime import Engine

        ds = load_dataset("cora", scale=0.05)
        model = gcn_model(ds.num_features, ds.num_classes)
        keys = {
            pipeline: Engine(
                consumer=ConsumerConfig(pipeline=pipeline)
            )._cell_key("igcn", ds.graph, model, 1.0)
            for pipeline in ("streamed", "staged")
        }
        assert keys["streamed"] != keys["staged"]

    def test_engine_reports_per_mode(self):
        from repro.runtime import Engine

        ds = load_dataset("cora", scale=0.05)
        by_mode = {}
        for pipeline in ("streamed", "staged"):
            engine = Engine(consumer=ConsumerConfig(pipeline=pipeline))
            by_mode[pipeline] = engine.simulate("igcn", ds)
        assert (
            by_mode["streamed"].total_cycles < by_mode["staged"].total_cycles
        )
        # Everything but the overlap model is identical.
        assert by_mode["streamed"].layers == by_mode["staged"].layers

    def test_invalid_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            ConsumerConfig(pipeline="overlapped")
