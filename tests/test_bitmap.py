"""Unit tests for island task bitmap construction."""

import numpy as np
import pytest

from repro.core import LocatorConfig, build_island_task, islandize
from repro.core.types import Island
from repro.errors import IslandizationError
from repro.graph import GraphBuilder


@pytest.fixture
def small_island_setup():
    """A 3-member island attached to one hub."""
    # hub 0 - members 1,2,3 form a triangle, all attached to the hub.
    g = (
        GraphBuilder(4)
        .add_star(0, [1, 2, 3])
        .add_clique([1, 2, 3])
        .build()
    )
    island = Island(
        round_id=1,
        members=np.array([1, 2, 3]),
        hubs=np.array([0]),
    )
    return g, island


class TestIslandTask:
    def test_local_order_hubs_first(self, small_island_setup):
        g, island = small_island_setup
        task = build_island_task(g, island, add_self_loops=False)
        assert task.local_nodes.tolist() == [0, 1, 2, 3]
        assert task.num_hubs == 1
        assert task.num_members == 3

    def test_member_block_matches_adjacency(self, small_island_setup):
        g, island = small_island_setup
        task = build_island_task(g, island, add_self_loops=False)
        member_block = task.bitmap[1:, 1:]
        expected = np.ones((3, 3), dtype=bool) ^ np.eye(3, dtype=bool)
        assert np.array_equal(member_block, expected)

    def test_hub_hub_block_zero(self, fig7):
        graph, members, hubs = fig7
        res = islandize(graph, LocatorConfig(th0=4))
        for island in res.islands:
            task = build_island_task(graph, island, add_self_loops=False)
            h = task.num_hubs
            assert not task.bitmap[:h, :h].any()

    def test_self_loops_on_member_diagonal_only(self, small_island_setup):
        g, island = small_island_setup
        task = build_island_task(g, island, add_self_loops=True)
        diag = np.diag(task.bitmap)
        assert not diag[0]           # hub diagonal stays clear
        assert diag[1:].all()        # member diagonal set

    def test_hub_rows_mirror_member_columns(self, small_island_setup):
        g, island = small_island_setup
        task = build_island_task(g, island, add_self_loops=False)
        # Edge (member, hub) must appear in both directions.
        assert np.array_equal(task.bitmap[0, 1:], task.bitmap[1:, 0])

    def test_nnz_counts_directed_entries(self, small_island_setup):
        g, island = small_island_setup
        task = build_island_task(g, island, add_self_loops=False)
        # 3 member-member undirected (6 directed) + 3 member-hub (6 directed)
        assert task.nnz == 12

    def test_nnz_is_cached(self, small_island_setup):
        # Read repeatedly per layer by the schedule/cost models: the
        # popcount must run once, then come from the instance dict.
        g, island = small_island_setup
        task = build_island_task(g, island, add_self_loops=False)
        assert "nnz" not in task.__dict__
        first = task.nnz
        assert task.__dict__["nnz"] == first
        task.__dict__["nnz"] = first + 7  # prove later reads skip the sum
        assert task.nnz == first + 7

    def test_member_and_hub_node_views(self, small_island_setup):
        g, island = small_island_setup
        task = build_island_task(g, island, add_self_loops=False)
        assert task.hub_nodes.tolist() == [0]
        assert task.member_nodes.tolist() == [1, 2, 3]


class TestIslandDataclass:
    def test_rejects_empty_members(self):
        with pytest.raises(IslandizationError):
            Island(1, members=np.array([], dtype=np.int64), hubs=np.array([1]))

    def test_rejects_member_hub_overlap(self):
        with pytest.raises(IslandizationError):
            Island(1, members=np.array([1, 2]), hubs=np.array([2]))

    def test_local_order(self):
        isl = Island(1, members=np.array([5, 6]), hubs=np.array([1]))
        assert isl.local_order.tolist() == [1, 5, 6]


class TestCoverage:
    def test_total_bitmap_nnz_plus_interhub_covers_graph(self):
        g = (
            GraphBuilder(12)
            .add_star(0, range(1, 8))
            .add_clique([1, 2, 3])
            .add_clique([4, 5, 6])
            .add_edge(8, 9)
            .add_edge(10, 11)
            .build()
        )
        res = islandize(g)
        res.validate()
        covered = sum(
            build_island_task(g, i, add_self_loops=False).nnz for i in res.islands
        )
        directed_interhub = sum(
            1 if u == v else 2 for u, v in res.interhub_edges.tolist()
        )
        assert covered + directed_interhub == g.num_edges
