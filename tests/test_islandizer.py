"""Unit tests for the Island Locator (Algorithms 1-4)."""

import numpy as np
import pytest

from repro.core import LocatorConfig, islandize
from repro.core.hub_detector import detect_new_hubs
from repro.errors import ConfigError, IslandizationError
from repro.graph import CSRGraph, GraphBuilder, erdos_renyi, hub_island_graph
from repro.graph.generators import CommunityProfile


class TestLocatorConfig:
    def test_defaults(self):
        c = LocatorConfig()
        assert c.p2 == 64
        assert c.c_max == 64

    def test_initial_threshold_quantile(self):
        degrees = np.arange(1, 101)
        th = LocatorConfig(th0_quantile=0.99).initial_threshold(degrees)
        assert th == 100

    def test_initial_threshold_explicit(self):
        assert LocatorConfig(th0=17).initial_threshold(np.arange(10)) == 17

    def test_threshold_decay_floors(self):
        c = LocatorConfig(decay=0.5, th_min=2)
        assert c.next_threshold(16) == 8
        assert c.next_threshold(3) == 2
        assert c.next_threshold(2) == 2

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            LocatorConfig(decay=1.5)
        with pytest.raises(ConfigError):
            LocatorConfig(c_max=0)
        with pytest.raises(ConfigError):
            LocatorConfig(p2=0)


class TestHubDetector:
    def test_detects_above_threshold(self):
        degrees = np.array([5, 1, 8, 0, 3])
        det = detect_new_hubs(degrees, np.zeros(5, dtype=bool), 4)
        assert det.new_hubs.tolist() == [0, 2]

    def test_isolated_nodes_split_out(self):
        degrees = np.array([5, 0, 0])
        det = detect_new_hubs(degrees, np.zeros(3, dtype=bool), 4)
        assert det.isolated.tolist() == [1, 2]

    def test_classified_skipped(self):
        degrees = np.array([5, 8])
        classified = np.array([True, False])
        det = detect_new_hubs(degrees, classified, 4)
        assert det.new_hubs.tolist() == [1]
        assert det.detect_items == 1


class TestBasicIslandization:
    def test_star_graph(self, star):
        res = islandize(star, LocatorConfig(th0=3))
        res.validate()
        assert res.num_hubs == 1
        assert res.num_islands == 5  # each leaf closes alone

    def test_triangle_no_hubs_needed(self, triangle):
        # th0=4 > all degrees: first rounds produce nothing until th_min
        res = islandize(triangle, LocatorConfig(th0=4, th_min=1))
        res.validate()

    def test_isolated_nodes_become_singletons(self, empty_graph):
        res = islandize(empty_graph)
        res.validate()
        assert res.num_islands == 5
        assert all(i.num_members == 1 for i in res.islands)
        assert res.num_hubs == 0

    def test_fig7_with_single_hub_threshold(self, fig7):
        graph, members, hubs = fig7
        # degrees: a=3,b=6,c=6,d..g=2,H=3; th0=4 makes b,c the hubs.
        res = islandize(graph, LocatorConfig(th0=4))
        res.validate()
        assert set(res.hub_ids.tolist()) >= {1, 2}

    def test_rejects_self_loops(self):
        g = GraphBuilder(2).add_edge(0, 0).add_edge(0, 1).build()
        with pytest.raises(IslandizationError):
            islandize(g)

    def test_empty_zero_node_graph(self):
        res = islandize(CSRGraph.empty(0))
        assert res.num_islands == 0
        assert res.num_hubs == 0


class TestInvariants:
    @pytest.fixture(scope="class")
    def result(self):
        graph, _ = hub_island_graph(
            500, CommunityProfile(hub_fraction=0.04, background_fraction=0.03),
            seed=13,
        )
        return islandize(graph), graph

    def test_validates(self, result):
        res, _ = result
        res.validate()

    def test_partition_complete(self, result):
        res, graph = result
        labels = res.membership()
        hubs = res.is_hub()
        assert np.all((labels >= 0) ^ hubs)

    def test_islands_disjoint(self, result):
        res, _ = result
        seen = set()
        for island in res.islands:
            members = set(island.members.tolist())
            assert not members & seen
            seen |= members

    def test_island_members_within_cmax(self, result):
        res, _ = result
        assert all(i.num_members <= 64 for i in res.islands)

    def test_island_hubs_are_hubs(self, result):
        res, _ = result
        hubs = set(res.hub_ids.tolist())
        for island in res.islands:
            assert set(island.hubs.tolist()) <= hubs

    def test_interhub_edges_exist_in_graph(self, result):
        res, graph = result
        for u, v in res.interhub_edges.tolist():
            assert graph.has_edge(u, v)

    def test_interhub_canonical_unique(self, result):
        res, _ = result
        pairs = [tuple(e) for e in res.interhub_edges.tolist()]
        assert len(pairs) == len(set(pairs))
        assert all(u <= v for u, v in pairs)

    def test_rounds_monotone_thresholds(self, result):
        res, _ = result
        thresholds = [r.threshold for r in res.rounds]
        assert all(a >= b for a, b in zip(thresholds, thresholds[1:]))

    def test_permutation_valid(self, result):
        res, graph = result
        perm = res.island_permutation()
        assert np.array_equal(np.sort(perm), np.arange(graph.num_nodes))

    def test_hubs_first_in_permutation(self, result):
        res, _ = result
        perm = res.island_permutation()
        if res.num_hubs:
            assert perm[res.hub_ids].max() < res.num_hubs


class TestCmax:
    def test_cmax_splits_dense_blob(self):
        # One 40-clique with c_max=8: no island may exceed 8 members.
        g = GraphBuilder(40).add_clique(range(40)).build()
        res = islandize(g, LocatorConfig(c_max=8))
        res.validate()
        assert all(i.num_members <= 8 for i in res.islands)

    def test_cmax_drops_recorded(self):
        # A hub fanning into a 30-node chain: BFS from any hub
        # neighbour must overrun c_max=4 and drop the task.
        b = GraphBuilder(31).add_star(0, range(1, 6)).add_path(range(1, 31))
        res = islandize(b.build(), LocatorConfig(th0=5, c_max=4))
        drops = sum(r.tasks_dropped_cmax for r in res.rounds)
        assert drops > 0


class TestTermination:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_terminate_and_validate(self, seed):
        g = erdos_renyi(200, 4.0, seed=seed)
        res = islandize(g)
        res.validate()
        assert res.num_rounds < 30

    def test_chain_graph(self):
        g = GraphBuilder(50).add_path(range(50)).build()
        res = islandize(g)
        res.validate()

    def test_two_node_components(self):
        b = GraphBuilder(10)
        for i in range(0, 10, 2):
            b.add_edge(i, i + 1)
        res = islandize(b.build())
        res.validate()


class TestWorkTracking:
    def test_adjacency_fetches_positive(self, community_graph):
        graph, _ = community_graph
        res = islandize(graph)
        assert res.work.total_adjacency_fetches > 0
        assert res.work.total_adjacency_bytes > 0

    def test_round_stats_sum_to_totals(self, community_graph):
        graph, _ = community_graph
        res = islandize(graph)
        assert (
            sum(r.adjacency_bytes for r in res.rounds)
            == res.work.total_adjacency_bytes
        )

    def test_engine_load_distributed(self, community_graph):
        graph, _ = community_graph
        res = islandize(graph, LocatorConfig(p2=4))
        loads = res.work.per_engine_scans
        assert len(loads) == 4
        assert loads.sum() == res.work.total_bfs_scans
