"""Unit tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    CommunityProfile,
    barabasi_albert,
    erdos_renyi,
    hub_island_graph,
    stochastic_block,
)


class TestCommunityProfile:
    def test_defaults_valid(self):
        CommunityProfile()

    def test_rejects_bad_hub_fraction(self):
        with pytest.raises(GraphError):
            CommunityProfile(hub_fraction=0.0)
        with pytest.raises(GraphError):
            CommunityProfile(hub_fraction=1.5)

    def test_rejects_bad_density(self):
        with pytest.raises(GraphError):
            CommunityProfile(island_density=1.5)

    def test_rejects_bad_background(self):
        with pytest.raises(GraphError):
            CommunityProfile(background_fraction=1.0)


class TestHubIslandGraph:
    def test_deterministic(self):
        g1, l1 = hub_island_graph(200, CommunityProfile(), seed=3)
        g2, l2 = hub_island_graph(200, CommunityProfile(), seed=3)
        assert np.array_equal(g1.indices, g2.indices)
        assert np.array_equal(l1, l2)

    def test_seed_changes_graph(self):
        g1, _ = hub_island_graph(200, CommunityProfile(), seed=3)
        g2, _ = hub_island_graph(200, CommunityProfile(), seed=4)
        assert not np.array_equal(g1.indices, g2.indices)

    def test_symmetric_no_self_loops(self):
        g, _ = hub_island_graph(150, CommunityProfile(), seed=0)
        assert g.is_symmetric()
        assert not g.has_self_loops()

    def test_hubs_labelled_minus_one(self):
        profile = CommunityProfile(hub_fraction=0.1)
        g, labels = hub_island_graph(100, profile, seed=0)
        num_hubs = int((labels == -1).sum())
        assert num_hubs == 10

    def test_islands_have_bounded_size(self):
        profile = CommunityProfile(island_size_max=5)
        _, labels = hub_island_graph(300, profile, seed=1)
        sizes = np.bincount(labels[labels >= 0])
        assert sizes.max() <= 5

    def test_hubs_have_high_degree(self):
        g, labels = hub_island_graph(400, CommunityProfile(), seed=2)
        hub_deg = g.degrees[labels == -1].mean()
        member_deg = g.degrees[labels >= 0].mean()
        assert hub_deg > 2 * member_deg

    def test_rejects_tiny_graph(self):
        with pytest.raises(GraphError):
            hub_island_graph(2, CommunityProfile())


class TestErdosRenyi:
    def test_average_degree_close(self):
        g = erdos_renyi(2000, 8.0, seed=0)
        assert g.avg_degree == pytest.approx(8.0, rel=0.15)

    def test_no_self_loops(self):
        g = erdos_renyi(100, 4.0, seed=1)
        assert not g.has_self_loops()

    def test_rejects_negative_degree(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, -1.0)


class TestBarabasiAlbert:
    def test_power_law_skew(self):
        g = barabasi_albert(1000, 2, seed=0)
        degrees = np.sort(g.degrees)[::-1]
        # Hub degrees far above the median is the BA signature.
        assert degrees[0] > 5 * np.median(degrees)

    def test_edge_count(self):
        g = barabasi_albert(500, 3, seed=1)
        # m edges per arriving node (plus the seed clique), undirected.
        assert g.num_edges / 2 == pytest.approx(3 * 500, rel=0.1)

    def test_rejects_small(self):
        with pytest.raises(GraphError):
            barabasi_albert(1, 1)


class TestStochasticBlock:
    def test_labels_match_sizes(self):
        _, labels = stochastic_block([10, 20, 30], 0.5, 0.01, seed=0)
        assert np.bincount(labels).tolist() == [10, 20, 30]

    def test_intra_block_denser(self):
        g, labels = stochastic_block([40, 40], 0.5, 0.01, seed=0)
        intra = inter = 0
        for u, v in g.iter_edges():
            if labels[u] == labels[v]:
                intra += 1
            else:
                inter += 1
        assert intra > 5 * inter

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            stochastic_block([], 0.5, 0.1)

    def test_rejects_bad_probability(self):
        with pytest.raises(GraphError):
            stochastic_block([5], 1.5, 0.1)
