"""Tests for the tiered artifact store: serialization round-trips,
disk/memory/tiered stores, warm-started engines, and parallel sweeps
sharing the disk tier."""

from __future__ import annotations

import io
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core import LocatorConfig
from repro.core.islandizer import islandize
from repro.core.types import ROUND_FIELDS, Island, IslandizationResult, LocatorWork, RoundStats
from repro.graph import CSRGraph, load_dataset
from repro.graph.datasets import Dataset
from repro.models import build_workload, gcn_model
from repro.models.workload import Workload
from repro.runtime import (
    MISS,
    DiskStore,
    Engine,
    MemoryStore,
    TieredStore,
)
from repro.serialize import config_digest, read_npz, write_npz


@pytest.fixture(scope="module")
def small_cora():
    return load_dataset("cora", scale=0.15, seed=3)


@pytest.fixture(scope="module")
def islandization(small_cora):
    return islandize(small_cora.graph.without_self_loops())


def assert_bytes_identical(a: np.ndarray, b: np.ndarray) -> None:
    """Byte-identity: dtype, shape and raw buffer all equal."""
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    assert a.tobytes() == b.tobytes()


# ----------------------------------------------------------------------
# npz helpers + config digests
# ----------------------------------------------------------------------
class TestSerializeHelpers:
    def test_write_read_roundtrip(self):
        buf = io.BytesIO()
        arrays = {"a": np.arange(5, dtype=np.int32), "b": np.zeros((0, 2))}
        write_npz(buf, arrays, {"answer": 42})
        buf.seek(0)
        loaded, meta = read_npz(buf)
        assert meta == {"answer": 42}
        for name in arrays:
            assert_bytes_identical(arrays[name], loaded[name])

    def test_extensionless_path_roundtrips(self, small_cora, tmp_path):
        # numpy.savez would silently write "<path>.npz"; write_npz must
        # honour the exact path so from_npz(path) finds the file.
        path = str(tmp_path / "graph.artifact")
        small_cora.graph.to_npz(path)
        assert (tmp_path / "graph.artifact").exists()
        from repro.graph import CSRGraph

        restored = CSRGraph.from_npz(path)
        assert restored.fingerprint() == small_cora.graph.fingerprint()

    def test_meta_key_reserved(self):
        from repro.serialize import META_KEY, SerializationError

        with pytest.raises(SerializationError):
            write_npz(io.BytesIO(), {META_KEY: np.zeros(1)}, {})

    def test_config_digest_stable_and_distinct(self):
        assert config_digest(LocatorConfig()) == config_digest(LocatorConfig())
        assert config_digest(LocatorConfig()) != config_digest(LocatorConfig(c_max=8))
        model = gcn_model(16, 4)
        assert config_digest(model) == config_digest(gcn_model(16, 4))
        assert config_digest(model) != config_digest(gcn_model(16, 4, variant="hy"))


# ----------------------------------------------------------------------
# Per-artifact round-trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_csr_graph(self, small_cora, tmp_path):
        graph = small_cora.graph
        path = str(tmp_path / "graph.npz")
        graph.to_npz(path)
        restored = CSRGraph.from_npz(path)
        assert_bytes_identical(graph.indptr, restored.indptr)
        assert_bytes_identical(graph.indices, restored.indices)
        assert restored.name == graph.name
        assert restored.fingerprint() == graph.fingerprint()

    def test_island(self, islandization):
        island = islandization.islands[0]
        buf = io.BytesIO()
        island.to_npz(buf)
        buf.seek(0)
        restored = Island.from_npz(buf)
        assert restored.round_id == island.round_id
        assert_bytes_identical(island.members, restored.members)
        assert_bytes_identical(island.hubs, restored.hubs)

    def test_round_stats(self, islandization):
        stats = islandization.rounds[0]
        buf = io.BytesIO()
        stats.to_npz(buf)
        buf.seek(0)
        assert RoundStats.from_npz(buf) == stats

    def test_locator_work(self, islandization):
        work = islandization.work
        buf = io.BytesIO()
        work.to_npz(buf)
        buf.seek(0)
        restored = LocatorWork.from_npz(buf)
        assert_bytes_identical(work.per_engine_scans, restored.per_engine_scans)
        for name in ("total_adjacency_fetches", "total_adjacency_bytes",
                     "total_detect_items", "total_bfs_scans"):
            assert getattr(restored, name) == getattr(work, name)

    def test_islandization_result(self, islandization, tmp_path):
        path = str(tmp_path / "isl.npz")
        islandization.to_npz(path)
        restored = IslandizationResult.from_npz(path)
        # Every numpy payload is byte-identical.
        assert_bytes_identical(islandization.graph.indptr, restored.graph.indptr)
        assert_bytes_identical(islandization.graph.indices, restored.graph.indices)
        assert_bytes_identical(islandization.hub_ids, restored.hub_ids)
        assert_bytes_identical(islandization.hub_round, restored.hub_round)
        assert_bytes_identical(islandization.interhub_edges, restored.interhub_edges)
        assert len(restored.islands) == len(islandization.islands)
        for a, b in zip(islandization.islands, restored.islands):
            assert a.round_id == b.round_id
            assert_bytes_identical(a.members, b.members)
            assert_bytes_identical(a.hubs, b.hubs)
        assert restored.rounds == islandization.rounds
        assert_bytes_identical(
            islandization.work.per_engine_scans, restored.work.per_engine_scans
        )
        # The restored result satisfies every islandization invariant and
        # produces the same layout (so downstream simulation is identical).
        assert restored.graph.fingerprint() == islandization.graph.fingerprint()
        restored.validate()
        np.testing.assert_array_equal(
            restored.island_permutation(), islandization.island_permutation()
        )

    def test_round_fields_cover_roundstats(self, islandization):
        row = islandization.rounds[0].as_row()
        assert tuple(row) == ROUND_FIELDS
        assert all(isinstance(v, int) for v in row.values())

    def test_dataset_with_features(self, tmp_path):
        ds = load_dataset("citeseer", scale=0.1, seed=5, with_features=True)
        path = str(tmp_path / "ds.npz")
        ds.to_npz(path)
        restored = Dataset.from_npz(path)
        assert restored.spec == ds.spec
        assert restored.scale == ds.scale
        assert restored.name == ds.name
        assert_bytes_identical(ds.graph.indptr, restored.graph.indptr)
        assert_bytes_identical(ds.graph.indices, restored.graph.indices)
        assert_bytes_identical(ds.community, restored.community)
        assert_bytes_identical(ds.labels, restored.labels)
        assert_bytes_identical(ds.features.data, restored.features.data)
        assert_bytes_identical(ds.features.indices, restored.features.indices)
        assert_bytes_identical(ds.features.indptr, restored.features.indptr)
        assert restored.features.shape == ds.features.shape
        assert restored.feature_nnz == ds.feature_nnz

    def test_dataset_without_features(self, small_cora, tmp_path):
        path = str(tmp_path / "ds.npz")
        small_cora.to_npz(path)
        restored = Dataset.from_npz(path)
        assert restored.features is None and restored.labels is None
        assert restored.graph.fingerprint() == small_cora.graph.fingerprint()

    def test_workload(self, small_cora, tmp_path):
        model = gcn_model(small_cora.num_features, small_cora.num_classes)
        workload = build_workload(
            small_cora.graph, model, feature_density=small_cora.feature_density
        )
        path = str(tmp_path / "wl.npz")
        workload.to_npz(path)
        assert Workload.from_npz(path) == workload


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------
class TestDiskStore:
    def test_put_get_each_kind(self, small_cora, islandization, tmp_path):
        store = DiskStore(tmp_path)
        model = gcn_model(small_cora.num_features, small_cora.num_classes)
        artifacts = {
            "dataset": small_cora,
            "clean_graph": small_cora.graph.without_self_loops(),
            "islandization": islandization,
            "workload": build_workload(small_cora.graph, model),
            "summary": {"platform": "igcn", "latency_us": 1.5, "graphs_per_kj": None},
        }
        for kind, value in artifacts.items():
            assert store.get(kind, "k") is MISS
            store.put(kind, "k", value)
            assert store.get(kind, "k") is not MISS
        # Summaries survive exactly (JSON), key order included.
        assert store.get("summary", "k") == artifacts["summary"]
        assert list(store.get("summary", "k")) == list(artifacts["summary"])

    def test_report_kind_not_handled(self, tmp_path):
        store = DiskStore(tmp_path)
        assert not store.handles("report")
        store.put("report", "k", object())  # no-op, must not raise
        assert store.get("report", "k") is MISS

    def test_corrupt_file_degrades_to_miss(self, small_cora, tmp_path):
        store = DiskStore(tmp_path)
        store.put("clean_graph", "k", small_cora.graph)
        path = store._path("clean_graph", "k")
        path.write_bytes(b"not an npz archive")
        assert store.get("clean_graph", "k") is MISS
        assert not path.exists()  # the broken file was evicted

    def test_keys_are_isolated_per_kind(self, small_cora, tmp_path):
        store = DiskStore(tmp_path)
        store.put("clean_graph", "same-key", small_cora.graph)
        assert store.get("dataset", "same-key") is MISS

    def test_clear_and_entries(self, small_cora, tmp_path):
        store = DiskStore(tmp_path)
        store.put("clean_graph", "a", small_cora.graph)
        store.put("summary", "b", {"x": 1})
        entries = store.entries()
        assert entries["clean_graph"][0] == 1 and entries["summary"][0] == 1
        assert store.clear() == 2
        assert store.entries() == {}

    def test_orphaned_tmp_files_not_counted(self, small_cora, tmp_path):
        # A worker killed mid-put leaves a ".tmp-*" file behind; it must
        # not inflate entries()/clear() accounting (clear still removes it).
        store = DiskStore(tmp_path)
        store.put("clean_graph", "a", small_cora.graph)
        orphan = tmp_path / "clean_graph" / ".tmp-abandoned.npz"
        orphan.write_bytes(b"partial write")
        assert store.entries()["clean_graph"][0] == 1
        assert store.clear() == 1
        assert not orphan.exists()


class TestEviction:
    """Size-bounded LRU-by-mtime eviction of the disk tier."""

    @staticmethod
    def _total_bytes(store: DiskStore) -> int:
        return sum(size for _, size in store.entries().values())

    def _populated(self, tmp_path, count=4):
        store = DiskStore(tmp_path)
        import os

        for i in range(count):
            store.put("summary", f"k{i}", {"row": i, "pad": "x" * 256})
            # Distinct, strictly increasing mtimes without sleeping.
            path = store._path("summary", f"k{i}")
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        return store

    def test_evicts_oldest_first_down_to_budget(self, tmp_path):
        store = self._populated(tmp_path)
        sizes = [
            store._path("summary", f"k{i}").stat().st_size for i in range(4)
        ]
        budget = sizes[2] + sizes[3]  # room for exactly the newest two
        removed, freed = store.evict(budget)
        assert removed == 2
        assert freed == sizes[0] + sizes[1]
        assert not store._path("summary", "k0").exists()
        assert not store._path("summary", "k1").exists()
        assert store.get("summary", "k2") is not MISS
        assert store.get("summary", "k3") is not MISS
        assert self._total_bytes(store) <= budget

    def test_evict_zero_budget_clears_everything(self, tmp_path):
        store = self._populated(tmp_path)
        removed, _ = store.evict(0)
        assert removed == 4
        assert store.entries() == {}

    def test_evict_noop_when_under_budget(self, tmp_path):
        store = self._populated(tmp_path)
        assert store.evict(10_000_000) == (0, 0)
        assert store.entries()["summary"][0] == 4

    def test_evict_spans_kinds_by_age(self, tmp_path, small_cora):
        import os

        store = DiskStore(tmp_path)
        store.put("clean_graph", "old", small_cora.graph)
        os.utime(store._path("clean_graph", "old"), (1, 1))
        store.put("summary", "new", {"row": 1})
        os.utime(store._path("summary", "new"), (2_000_000_000, 2_000_000_000))
        graph_bytes = store._path("clean_graph", "old").stat().st_size
        removed, freed = store.evict(self._total_bytes(store) - 1)
        assert removed == 1 and freed == graph_bytes
        assert store.get("clean_graph", "old") is MISS
        assert store.get("summary", "new") is not MISS

    def test_evict_rejects_negative_budget(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            DiskStore(tmp_path).evict(-1)

    def test_evict_missing_root_is_noop(self, tmp_path):
        assert DiskStore(tmp_path / "absent").evict(0) == (0, 0)


class TestTieredStore:
    def test_lower_tier_hit_promotes(self, small_cora, tmp_path):
        memory, disk = MemoryStore(), DiskStore(tmp_path)
        tiered = TieredStore(memory, disk)
        disk.put("clean_graph", "k", small_cora.graph)
        first = tiered.get("clean_graph", "k")
        assert first is not MISS
        # Promotion: the memory tier now answers without touching disk.
        assert memory.get("clean_graph", "k") is not MISS
        disk_stats = tiered.stats()["disk"]["clean_graph"]
        tiered.get("clean_graph", "k")
        assert tiered.stats()["disk"]["clean_graph"].total == disk_stats.total

    def test_put_writes_through_all_tiers(self, small_cora, tmp_path):
        memory, disk = MemoryStore(), DiskStore(tmp_path)
        TieredStore(memory, disk).put("clean_graph", "k", small_cora.graph)
        assert memory.get("clean_graph", "k") is not MISS
        assert disk.get("clean_graph", "k") is not MISS

    def test_duplicate_tier_types_keep_separate_stats(self, small_cora, tmp_path):
        a, b = DiskStore(tmp_path / "a"), DiskStore(tmp_path / "b")
        tiered = TieredStore(a, b)
        b.put("clean_graph", "k", small_cora.graph)
        tiered.get("clean_graph", "k")
        stats = tiered.stats()
        assert set(stats) == {"disk", "disk2"}
        assert stats["disk"]["clean_graph"].misses == 1   # tier a missed
        assert stats["disk2"]["clean_graph"].hits == 1    # tier b hit

    def test_unserializable_kind_stays_in_memory(self, tmp_path):
        tiered = TieredStore(MemoryStore(), DiskStore(tmp_path))
        marker = object()
        tiered.put("report", "k", marker)
        assert tiered.get("report", "k") is marker
        assert DiskStore(tmp_path).get("report", "k") is MISS


# ----------------------------------------------------------------------
# Engine over the store stack
# ----------------------------------------------------------------------
class TestEngineWarmStart:
    DATASETS = ("cora",)
    PLATFORMS = ("igcn", "awb")
    SWEEP = dict(scale=0.15, seed=3)

    def test_second_engine_zero_islandization_misses(self, tmp_path):
        cold = Engine(cache_dir=str(tmp_path))
        rows_cold = cold.sweep(self.DATASETS, self.PLATFORMS, **self.SWEEP)
        assert cold.cache_stats()["islandization"].misses == 1

        warm = Engine(cache_dir=str(tmp_path))
        rows_warm = warm.sweep(self.DATASETS, self.PLATFORMS, **self.SWEEP)
        stats = warm.cache_stats()
        # The acceptance criterion: the warm run re-islandizes nothing
        # (and in fact simulates nothing — summary rows come from disk).
        assert stats["islandization"].misses == 0
        assert stats["report"].total == 0
        assert stats["summary"].misses == 0
        assert stats["summary"].hits == len(rows_cold)
        assert rows_warm == rows_cold

    def test_warm_islandization_artifact_equivalent(self, small_cora, tmp_path):
        first = Engine(cache_dir=str(tmp_path))
        original = first.islandization(small_cora.graph)

        second = Engine(cache_dir=str(tmp_path))
        restored = second.islandization(small_cora.graph)
        stats = second.cache_stats()["islandization"]
        assert (stats.hits, stats.misses) == (1, 0)
        assert restored.num_islands == original.num_islands
        assert restored.num_hubs == original.num_hubs
        np.testing.assert_array_equal(restored.hub_ids, original.hub_ids)
        np.testing.assert_array_equal(
            restored.island_permutation(), original.island_permutation()
        )

    def test_warm_hit_lands_in_disk_tier(self, small_cora, tmp_path):
        Engine(cache_dir=str(tmp_path)).islandization(small_cora.graph)
        warm = Engine(cache_dir=str(tmp_path))
        warm.islandization(small_cora.graph)
        tiers = warm.tier_stats()
        assert tiers["memory"]["islandization"].hits == 0
        assert tiers["disk"]["islandization"].hits == 1

    def test_parallel_rows_match_serial_with_disk_tier(self, tmp_path):
        datasets = ("cora", "citeseer")
        serial = Engine(cache_dir=str(tmp_path / "serial")).sweep(
            datasets, self.PLATFORMS, **self.SWEEP
        )
        parallel = Engine(cache_dir=str(tmp_path / "parallel")).sweep(
            datasets, self.PLATFORMS, parallel=2, **self.SWEEP
        )
        assert parallel == serial

    def test_parallel_stats_propagated_and_disk_shared(self, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        engine.sweep(("cora", "citeseer"), self.PLATFORMS, parallel=2, **self.SWEEP)
        stats = engine.cache_stats()
        # Worker deltas were folded back: the coordinating engine did no
        # work itself, yet the counters reflect the workers' computes.
        assert stats["islandization"].misses == 2
        assert stats["summary"].misses == 4

        again = Engine(cache_dir=str(tmp_path))
        again.sweep(("cora", "citeseer"), self.PLATFORMS, parallel=2, **self.SWEEP)
        warm = again.cache_stats()
        # Workers in the second run warm-start from the shared disk tier.
        assert warm["islandization"].misses == 0
        assert warm["summary"].hits == 4

    def test_locator_configs_do_not_collide_on_shared_disk(self, tmp_path):
        shared = str(tmp_path)
        default_rows = Engine(cache_dir=shared).sweep(
            self.DATASETS, ("igcn",), **self.SWEEP
        )
        tight = Engine(locator=LocatorConfig(c_max=4), cache_dir=shared)
        tight_rows = tight.sweep(self.DATASETS, ("igcn",), **self.SWEEP)
        # The tight-locator engine computed its own cell (no cross-config
        # hit) and its result matches a cold engine in a fresh directory.
        assert tight.cache_stats()["summary"].misses == 1
        fresh = Engine(locator=LocatorConfig(c_max=4)).sweep(
            self.DATASETS, ("igcn",), **self.SWEEP
        )
        assert tight_rows == fresh
        assert tight_rows != default_rows

    def test_baseline_rows_shared_across_locator_configs(self, tmp_path):
        # Baselines cannot depend on the locator; a second engine with a
        # different LocatorConfig must reuse their disk-cached rows.
        shared = str(tmp_path)
        Engine(cache_dir=shared).sweep(self.DATASETS, ("awb",), **self.SWEEP)
        other = Engine(locator=LocatorConfig(c_max=4), cache_dir=shared)
        other.sweep(self.DATASETS, ("awb",), **self.SWEEP)
        assert other.cache_stats()["summary"].misses == 0

    def test_consumer_configs_do_not_collide_on_shared_disk(self, tmp_path):
        # Engines with different consumer configs (here: k) must not
        # serve each other's igcn rows — the consumer digest is part of
        # the cell key; backend alone also digests differently.
        from repro.core import ConsumerConfig

        shared = str(tmp_path)
        Engine(cache_dir=shared).sweep(self.DATASETS, ("igcn",), **self.SWEEP)
        wide = Engine(consumer=ConsumerConfig(preagg_k=16), cache_dir=shared)
        wide.sweep(self.DATASETS, ("igcn",), **self.SWEEP)
        assert wide.cache_stats()["summary"].misses == 1

    def test_consumer_backends_share_no_summary_rows(self, tmp_path):
        # The two backends produce identical rows by contract, but a
        # shared store still must not mix them (cache hygiene: a row
        # must always have been computed by the config that keys it).
        from repro.core import ConsumerConfig

        shared = str(tmp_path)
        batched = Engine(cache_dir=shared)
        batched_rows = batched.sweep(self.DATASETS, ("igcn",), **self.SWEEP)
        scalar = Engine(
            consumer=ConsumerConfig(backend="scalar"), cache_dir=shared
        )
        scalar_rows = scalar.sweep(self.DATASETS, ("igcn",), **self.SWEEP)
        assert scalar.cache_stats()["summary"].misses == 1
        assert scalar_rows == batched_rows  # the equivalence contract

    def test_put_survives_concurrent_clear(self, small_cora, tmp_path, monkeypatch):
        # Simulate `repro cache clear` racing a worker's put(): the kind
        # directory vanishes mid-write; put retries and must not raise.
        import shutil
        import tempfile

        store = DiskStore(tmp_path)
        original_mkstemp = tempfile.mkstemp
        raced = []

        def racing_mkstemp(*args, **kwargs):
            if not raced:
                raced.append(True)
                shutil.rmtree(tmp_path / "clean_graph")
                raise FileNotFoundError("directory swept by clear()")
            return original_mkstemp(*args, **kwargs)

        monkeypatch.setattr("repro.runtime.store.tempfile.mkstemp", racing_mkstemp)
        store.put("clean_graph", "k", small_cora.graph)
        assert store.get("clean_graph", "k") is not MISS

    def test_memory_only_engine_never_touches_disk(self, small_cora, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        engine = Engine()
        engine.islandization(small_cora.graph)
        assert not (tmp_path / ".cache").exists()

    def test_explicit_store_stack_forwards_disk_tier_to_workers(self, tmp_path):
        # An engine built with store= (not cache_dir=) must still hand
        # its disk tier to parallel sweep workers.
        store = TieredStore(MemoryStore(), DiskStore(tmp_path))
        engine = Engine(store=store)
        assert engine._worker_cache_dir() == str(DiskStore(tmp_path).root)
        engine.sweep(self.DATASETS, self.PLATFORMS, parallel=2, **self.SWEEP)
        assert DiskStore(tmp_path).entries()["islandization"][0] == 1

        warm = Engine(cache_dir=str(tmp_path))
        warm.sweep(self.DATASETS, self.PLATFORMS, **self.SWEEP)
        assert warm.cache_stats()["islandization"].misses == 0

    def test_memory_only_store_gives_workers_no_disk(self):
        assert Engine()._worker_cache_dir() is None

    def test_disk_key_space_is_versioned(self, small_cora, tmp_path, monkeypatch):
        store = DiskStore(tmp_path)
        store.put("clean_graph", "k", small_cora.graph)
        monkeypatch.setattr(DiskStore, "VERSION", DiskStore.VERSION + 1)
        # A version bump invalidates old entries: they miss, not serve.
        assert store.get("clean_graph", "k") is MISS

    def test_clear_spares_shared_disk_tier_by_default(self, small_cora, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        engine.islandization(small_cora.graph)
        engine.clear()
        # Memory tier and counters reset, but the shared disk tier —
        # possibly in use by other processes — survives.
        assert engine.cache_stats()["islandization"].total == 0
        assert DiskStore(tmp_path).entries()["islandization"][0] == 1
        engine.islandization(small_cora.graph)
        assert engine.cache_stats()["islandization"].hits == 1  # disk hit
        engine.clear(disk=True)
        assert DiskStore(tmp_path).entries() == {}

    def test_disk_store_creates_nothing_until_put(self, small_cora, tmp_path):
        root = tmp_path / "never-written"
        store = DiskStore(root)
        assert store.get("clean_graph", "k") is MISS
        assert store.entries() == {}
        assert store.clear() == 0
        assert not root.exists()  # read-only paths have no side effects
        store.put("clean_graph", "k", small_cora.graph)
        assert root.exists()

    def test_store_and_cache_dir_mutually_exclusive(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="not both"):
            Engine(store=MemoryStore(), cache_dir=str(tmp_path))

    def test_summary_rows_are_copies(self, small_cora, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        row = engine.summary("awb", small_cora)
        row["latency_us"] = -1
        assert engine.summary("awb", small_cora)["latency_us"] != -1


class TestCLICacheCommands:
    def test_sweep_warm_start_and_cache_cli(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["sweep", "--datasets", "cora", "--platforms", "igcn", "awb",
                "--scale", "0.15", "--seed", "3", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "islandizations computed 1" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "islandizations computed 0" in warm
        assert "summary rows reused 2 of 2" in warm

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        stats = capsys.readouterr().out
        assert "islandization" in stats and "summary" in stats

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_evict_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "--datasets", "cora", "--platforms", "igcn",
                     "--scale", "0.15", "--seed", "3",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        # A generous budget evicts nothing; zero evicts everything.
        assert main(["cache", "evict", "--max-size", "1G",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "evicted 0 artifacts" in capsys.readouterr().out
        assert main(["cache", "evict", "--max-size", "0",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "evicted" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_evict_requires_max_size(self, capsys):
        from repro.cli import main

        assert main(["cache", "evict"]) == 2
        assert "max-size" in capsys.readouterr().err

    def test_cache_evict_rejects_bad_size(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["cache", "evict", "--max-size", "lots",
                     "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "unparsable size" in capsys.readouterr().err

    @pytest.mark.parametrize("size", ["inf", "nan", "-1"])
    def test_cache_evict_rejects_non_finite_size(self, size, tmp_path, capsys):
        from repro.cli import main

        code = main(["cache", "evict", "--max-size", size,
                     "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "non-negative finite" in capsys.readouterr().err

    def test_sweep_json_output_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "rows.json"
        assert main(["sweep", "--datasets", "cora", "--platforms", "awb",
                     "--scale", "0.15", "--format", "json",
                     "--output", str(out)]) == 0
        rows = json.loads(out.read_text())
        assert rows[0]["platform"] == "awb-gcn"
        assert "wrote 1 rows" in capsys.readouterr().out

    def test_unwritable_output_is_a_clean_cli_error(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--datasets", "cora", "--platforms", "awb",
                     "--scale", "0.15", "--output", "/nonexistent/rows.json"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")

    def test_sweep_csv_stdout_keeps_stats_on_stderr(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--datasets", "cora", "--platforms", "awb",
                     "--scale", "0.15", "--format", "csv"]) == 0
        captured = capsys.readouterr()
        header = captured.out.splitlines()[0]
        assert header.startswith("platform,graph,model,")
        assert "cache:" not in captured.out
        assert "cache:" in captured.err

    def test_env_var_enables_disk_cache(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["sweep", "--datasets", "cora", "--platforms", "igcn",
                "--scale", "0.15", "--seed", "3"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "islandizations computed 0" in capsys.readouterr().out


class TestDiskVerify:
    """Integrity sweep: orphan/corruption detection and repair."""

    @pytest.fixture
    def seeded(self, small_cora, islandization, tmp_path):
        store = DiskStore(tmp_path / "store")
        store.put("islandization", "isl-key", islandization)
        store.put("summary", "sum-key", {"latency_us": 1.0})
        return store

    def test_clean_store(self, seeded):
        report = seeded.verify()
        assert report.clean
        assert report.ok == 2
        assert report.removed == 0

    def test_classification_and_repair(self, seeded):
        root = seeded.root
        # Corrupt: well-named files whose codec rejects the contents.
        bad_json = root / "summary" / ("c" * 32 + ".json")
        bad_json.write_text("{truncated")
        bad_npz = root / "islandization" / ("d" * 32 + ".npz")
        bad_npz.write_bytes(b"PK\x03\x04 not a real archive")
        # Orphaned: tmp debris, non-digest names, unknown dirs, strays.
        (root / "islandization" / ".tmp-died").write_bytes(b"x")
        (root / "islandization" / "notadigest.npz").write_bytes(b"x")
        (root / "summary" / ("e" * 32 + ".npz")).write_bytes(b"x")
        (root / "unknown-kind").mkdir()
        (root / "unknown-kind" / "file.bin").write_bytes(b"x")
        (root / "stray.txt").write_text("x")

        report = seeded.verify()
        assert not report.clean
        assert report.ok == 2
        assert sorted(Path(p).name for p in report.corrupt) == [
            "c" * 32 + ".json", "d" * 32 + ".npz",
        ]
        assert len(report.orphaned) == 5
        assert report.removed == 0  # report-only by default

        repaired = seeded.verify(repair=True)
        assert repaired.removed == 7
        after = seeded.verify()
        assert after.clean
        assert after.ok == 2  # intact artifacts untouched
        assert seeded.get("summary", "sum-key") == {"latency_us": 1.0}

    def test_missing_root_is_clean(self, tmp_path):
        report = DiskStore(tmp_path / "never-created").verify()
        assert report.clean
        assert report.ok == 0

    def test_shard_codec_and_path_for(self, small_cora, tmp_path):
        from repro.graph import GraphShard
        from repro.graph.partition import partition_graph

        graph = small_cora.graph.without_self_loops()
        part = partition_graph(graph, 2)
        store = DiskStore(tmp_path / "store")
        for shard in part.shards:
            store.put("shard", f"s{shard.part_id}", shard)
            path = store.path_for("shard", f"s{shard.part_id}")
            assert path.exists()
            mapped = GraphShard.from_npz_mmap(str(path))
            assert np.array_equal(mapped.global_nodes, shard.global_nodes)
        assert store.verify().ok == len(part.shards)

    def test_path_for_unknown_kind(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            DiskStore(tmp_path).path_for("nonsense", "key")

    def test_cache_verify_cli(self, tmp_path, capsys):
        from repro.cli import main

        store = DiskStore(tmp_path / "store")
        store.put("summary", "k", {"a": 1})
        argv = ["cache", "verify", "--cache-dir", str(store.root)]
        assert main(argv) == 0
        assert "1 artifacts intact" in capsys.readouterr().out

        (store.root / "stray.bin").write_bytes(b"x")
        assert main(argv) == 1
        assert "1 orphaned" in capsys.readouterr().out
        assert main(argv + ["--repair"]) == 0
        assert "removed 1 files" in capsys.readouterr().out
        assert main(argv) == 0

    def test_repair_flag_needs_verify(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--repair",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "only applies to cache verify" in capsys.readouterr().err


class TestDiskGC:
    """Reachability GC: stranded-artifact collection via the put index."""

    @pytest.fixture
    def seeded(self, islandization, tmp_path):
        store = DiskStore(tmp_path / "store")
        store.put("islandization", "isl-key", islandization)
        store.put("summary", "sum-key", {"latency_us": 1.0})
        return store

    def test_clean_store_collects_nothing(self, seeded):
        report = seeded.gc()
        assert report.live == 2
        assert report.removed == []
        assert report.indexed
        assert seeded.get("summary", "sum-key") == {"latency_us": 1.0}

    def test_stranded_artifact_is_collected(self, seeded):
        # A well-named, decodable file that no current key addresses —
        # what a VERSION bump leaves behind.  verify() calls it intact;
        # gc() knows better.
        live = seeded._path("summary", "sum-key")
        stranded = live.parent / ("f" * 32 + ".json")
        stranded.write_bytes(live.read_bytes())
        assert seeded.verify().ok == 3  # verify cannot see the problem

        report = seeded.gc(dry_run=True)
        assert [Path(p).name for p in report.removed] == [stranded.name]
        assert report.removed_count == 0 and stranded.exists()

        report = seeded.gc()
        assert report.removed_count == 1
        assert not stranded.exists()
        assert report.live == 2
        assert seeded.get("islandization", "isl-key") is not MISS

    def test_shape_orphans_are_collected_too(self, seeded):
        root = seeded.root
        (root / "summary" / ".tmp-died").write_bytes(b"x")
        (root / "unknown-kind").mkdir()
        (root / "unknown-kind" / "file.bin").write_bytes(b"x")
        (root / "stray.txt").write_text("x")
        report = seeded.gc()
        assert len(report.removed) == 3
        assert report.live == 2
        assert seeded.verify().clean

    def test_legacy_store_swept_conservatively_then_adopted(self, seeded):
        # Deleting the index simulates a store written by an older
        # build: decodable artifacts must survive the first gc (which
        # adopts them); precision returns on the second.
        (seeded.root / "index.log").unlink()
        live = seeded._path("summary", "sum-key")
        stranded = live.parent / ("f" * 32 + ".json")
        stranded.write_bytes(live.read_bytes())

        first = seeded.gc()
        assert not first.indexed
        assert first.live == 3 and stranded.exists()  # conservative

        second = seeded.gc()
        assert second.indexed
        assert second.live == 3  # adopted: the copy is now reachable

    def test_full_clear_drops_index(self, seeded):
        seeded.clear()
        assert not (seeded.root / "index.log").exists()
        report = seeded.gc()
        assert report.live == 0 and report.removed == []

    def test_verify_spares_the_index(self, seeded):
        report = seeded.verify()
        assert report.clean  # index.log is not an orphan

    def test_gc_missing_root(self, tmp_path):
        report = DiskStore(tmp_path / "never-created").gc()
        assert report.live == 0 and report.removed == []

    def test_cache_gc_cli(self, tmp_path, capsys):
        from repro.cli import main

        store = DiskStore(tmp_path / "store")
        store.put("summary", "k", {"a": 1})
        live = store._path("summary", "k")
        stranded = live.parent / ("e" * 32 + ".json")
        stranded.write_bytes(live.read_bytes())
        argv = ["cache", "gc", "--cache-dir", str(store.root)]

        assert main(argv + ["--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would remove 1 files" in out
        assert stranded.exists()

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 reachable artifacts" in out
        assert "removed 1 files" in out
        assert not stranded.exists()

    def test_dry_run_flag_needs_gc(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--dry-run",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "only applies to cache gc" in capsys.readouterr().err


class TestIndexLock:
    """Cross-process gc/put race: the advisory ``.index.lock``."""

    def test_put_creates_lockfile_and_sweeps_spare_it(self, tmp_path):
        store = DiskStore(tmp_path / "store")
        store.put("summary", "k", {"x": 1})
        lock = store.root / ".index.lock"
        assert lock.exists()
        assert store.verify().clean          # not an orphan
        report = store.gc()
        assert report.removed == []
        assert lock.exists()                 # gc holds it, never dooms it
        assert store.entries()["summary"][0] == 1

    def test_two_stores_interleaved_on_one_root(self, tmp_path):
        # Two engine processes sharing one cache dir: puts from either
        # side interleaved with the other side's gc must never strand
        # or collect a just-published artifact.
        root = tmp_path / "shared"
        a, b = DiskStore(root), DiskStore(root)
        for i in range(4):
            a.put("summary", f"a{i}", {"from": "a", "i": i})
            b.put("summary", f"b{i}", {"from": "b", "i": i})
            report = (a if i % 2 else b).gc()
            assert report.removed == []
        assert a.gc(dry_run=True).removed == []
        for i in range(4):
            assert a.get("summary", f"b{i}") == {"from": "b", "i": i}
            assert b.get("summary", f"a{i}") == {"from": "a", "i": i}
        # One shared index saw every put exactly once.
        assert a.gc().live == 8

    def test_lock_excludes_concurrent_put(self, tmp_path):
        # The actual race: a sweep scanning while another store
        # publishes.  Holding the lock must block the other side's
        # put (publish + index append) until release.
        import threading
        import time

        fcntl = pytest.importorskip("fcntl")
        del fcntl
        root = tmp_path / "shared"
        holder, writer = DiskStore(root), DiskStore(root)
        holder.put("summary", "seed", {"x": 0})  # create the root + lock
        done = threading.Event()

        def blocked_put():
            writer.put("summary", "raced", {"x": 1})
            done.set()

        with holder._index_lock():
            t = threading.Thread(target=blocked_put)
            t.start()
            assert not done.wait(0.3)        # put is stuck on the lock
        t.join(timeout=10)
        assert done.is_set()                 # released -> put completed
        assert writer.get("summary", "raced") == {"x": 1}
        assert holder.gc().live == 2


class TestIndexCrashTolerance:
    """A crashed writer's torn index line degrades, never aborts."""

    @pytest.fixture
    def seeded(self, tmp_path):
        store = DiskStore(tmp_path / "store")
        store.put("summary", "a", {"x": 1})
        store.put("summary", "b", {"x": 2})
        return store

    def test_garbled_bytes_skipped_with_warning(self, seeded):
        with open(seeded.root / "index.log", "ab") as fh:
            fh.write(b"\xff\xfe not even text\n")
        with pytest.warns(RuntimeWarning, match="corrupt index line"):
            report = seeded.gc(dry_run=True)
        assert report.live == 2 and report.removed == []

    def test_truncated_trailing_line_skipped(self, seeded):
        # SIGKILL mid-append: the last line is cut short.  It no longer
        # vouches for its artifact (gc forfeits that one entry, exactly
        # like the lockless put race) but the rest of the index — and
        # gc itself — must survive.
        index = seeded.root / "index.log"
        data = index.read_bytes()
        index.write_bytes(data[: len(data) - 8])
        with pytest.warns(RuntimeWarning, match="corrupt index line"):
            report = seeded.gc()
        assert report.live == 1 and report.removed_count == 1
        assert seeded.get("summary", "a") == {"x": 1}
        # The compaction healed the index: no warning the second time.
        assert seeded.gc().live == 1

    def test_compaction_heals_the_index(self, seeded):
        with open(seeded.root / "index.log", "ab") as fh:
            fh.write(b"\xffgarbage")
        with pytest.warns(RuntimeWarning):
            seeded.gc()
        report = seeded.gc()  # would re-warn if garbage survived
        assert report.live == 2

    def test_wrong_shape_lines_skipped(self, seeded):
        with open(seeded.root / "index.log", "a") as fh:
            fh.write("no-version-prefix summary/x.json\n")
            fh.write(f"v{DiskStore.VERSION} nonsense-without-slash\n")
            fh.write(f"v{DiskStore.VERSION} summary/not-a-digest.json\n")
        with pytest.warns(RuntimeWarning, match="skipped 3 corrupt"):
            report = seeded.gc(dry_run=True)
        assert report.live == 2

    def test_old_version_lines_are_not_corruption(self, seeded):
        # Legacy lines are ignorable history, not damage: no warning.
        with open(seeded.root / "index.log", "a") as fh:
            fh.write("v0 summary/aaaa.json\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = seeded.gc(dry_run=True)
        assert report.live == 2

    def test_cache_gc_cli_survives_corruption(self, seeded, capsys):
        from repro.cli import main

        with open(seeded.root / "index.log", "ab") as fh:
            fh.write(b"\xff\xfe torn\n")
        with pytest.warns(RuntimeWarning):
            assert main(["cache", "gc", "--cache-dir",
                         str(seeded.root)]) == 0
        assert "2 reachable artifacts" in capsys.readouterr().out


class TestGCLockRefusal:
    """Destructive gc without the advisory lock refuses, not sweeps."""

    @pytest.fixture
    def lockless(self, tmp_path, monkeypatch):
        import repro.runtime.store as store_mod

        monkeypatch.setattr(store_mod, "fcntl", None)
        store = DiskStore(tmp_path / "store")
        store.put("summary", "k", {"x": 1})
        return store

    def test_destructive_sweep_refused(self, lockless):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="refusing destructive gc"):
            lockless.gc()
        assert lockless.get("summary", "k") == {"x": 1}

    def test_dry_run_and_force_still_work(self, lockless):
        assert lockless.gc(dry_run=True).live == 1
        report = lockless.gc(force=True)
        assert report.live == 1 and not report.dry_run

    def test_missing_root_never_refuses(self, tmp_path, monkeypatch):
        import repro.runtime.store as store_mod

        monkeypatch.setattr(store_mod, "fcntl", None)
        report = DiskStore(tmp_path / "absent").gc()
        assert report.live == 0

    def test_cli_refusal_and_force(self, lockless, capsys):
        from repro.cli import main

        argv = ["cache", "gc", "--cache-dir", str(lockless.root)]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "refusing destructive gc" in err and "--force" in err
        assert main(argv + ["--dry-run"]) == 0
        capsys.readouterr()
        assert main(argv + ["--force"]) == 0
        assert "1 reachable artifacts" in capsys.readouterr().out

    def test_force_flag_needs_gc(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--force",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "only applies to cache gc" in capsys.readouterr().err
