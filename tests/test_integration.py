"""Integration tests: whole-system behaviour across modules.

These exercise the full pipeline (datasets -> islandizer -> consumer ->
hardware models -> reports) and pin the paper's qualitative claims.
"""

import numpy as np
import pytest

from repro.baselines import AWBGCNAccelerator, HyGCNAccelerator
from repro.core import ConsumerConfig, IGCNAccelerator, LocatorConfig
from repro.graph import load_dataset
from repro.graph.reorder import locality_report
from repro.models import (
    gcn_model,
    gin_model,
    graphsage_model,
    init_weights,
    reference_forward,
)


@pytest.fixture(scope="module")
def cora():
    return load_dataset("cora", seed=7)


@pytest.fixture(scope="module")
def cora_report(cora):
    model = gcn_model(cora.num_features, cora.num_classes)
    return IGCNAccelerator().run(
        cora.graph, model, feature_density=cora.feature_density
    )


class TestEndToEndFunctional:
    """Islandized execution is lossless for all three model families,
    on multiple datasets, through multiple layers."""

    @pytest.mark.parametrize("dataset", ["cora", "citeseer"])
    @pytest.mark.parametrize("builder", [gcn_model, graphsage_model, gin_model])
    def test_multilayer_losslessness(self, dataset, builder):
        ds = load_dataset(dataset, scale=0.08, with_features=True, seed=11)
        model = builder(ds.num_features, ds.num_classes)
        weights = init_weights(model, seed=21)
        report = IGCNAccelerator().run(
            ds.graph, model,
            features=ds.features, weights=weights, functional=True,
            feature_density=ds.feature_density,
        )
        reference = reference_forward(
            ds.graph.without_self_loops(), model, ds.features, weights
        )
        assert np.allclose(report.outputs, reference, atol=1e-9), (
            f"{dataset}/{model.name}: islandized result diverges"
        )

    def test_pruning_never_changes_results(self):
        """k=2 vs k=8 must give bit-comparable outputs (both lossless)."""
        ds = load_dataset("cora", scale=0.08, with_features=True, seed=11)
        model = gcn_model(ds.num_features, ds.num_classes)
        weights = init_weights(model, seed=3)
        outs = []
        for k in (2, 8):
            rep = IGCNAccelerator(consumer=ConsumerConfig(preagg_k=k)).run(
                ds.graph, model, features=ds.features, weights=weights,
                functional=True, feature_density=ds.feature_density,
            )
            outs.append(rep.outputs)
        assert np.allclose(outs[0], outs[1], atol=1e-9)


class TestPaperClaims:
    """Qualitative claims from the paper, checked on the surrogates."""

    def test_islandization_converges_in_several_rounds(self, cora_report):
        # §4.2: "within several rounds".
        assert cora_report.islandization.num_rounds <= 10

    def test_aggregation_pruning_in_paper_band(self, cora_report):
        # Figure 10: Cora 39%; accept the calibrated band.
        assert 0.25 <= cora_report.aggregation_pruning_rate <= 0.50

    def test_hubs_are_small_fraction(self, cora_report):
        # §3.1.1: "hubs are normally a small fraction of the entire graph".
        assert cora_report.islandization.hub_fraction < 0.15

    def test_locality_improves_over_original(self, cora, cora_report):
        isl = cora_report.islandization
        base = cora.graph.without_self_loops()
        before = locality_report(base)
        after = locality_report(base.permute(isl.island_permutation()))
        assert after.tile_coverage > before.tile_coverage

    def test_igcn_beats_awb_on_community_graphs(self, cora, cora_report):
        model = gcn_model(cora.num_features, cora.num_classes)
        awb = AWBGCNAccelerator().run(
            cora.graph, model, feature_density=cora.feature_density
        )
        assert awb.latency_us > cora_report.latency_us

    def test_igcn_traffic_below_baselines(self, cora, cora_report):
        model = gcn_model(cora.num_features, cora.num_classes)
        awb = AWBGCNAccelerator().run(
            cora.graph, model, feature_density=cora.feature_density
        )
        hygcn = HyGCNAccelerator().run(
            cora.graph, model, feature_density=cora.feature_density
        )
        assert cora_report.offchip_bytes < awb.offchip_bytes
        assert cora_report.offchip_bytes < hygcn.offchip_bytes

    def test_reddit_prunes_least(self):
        rates = {}
        for name in ("citeseer", "reddit"):
            ds = load_dataset(name, seed=7)
            model = gcn_model(ds.num_features, ds.num_classes)
            rep = IGCNAccelerator().run(
                ds.graph, model, feature_density=ds.feature_density
            )
            rates[name] = rep.aggregation_pruning_rate
        # §4.6.2 / Fig 10: Reddit has the weakest community structure.
        assert rates["reddit"] < rates["citeseer"]

    def test_edge_coverage_validated_on_all_datasets(self):
        for name in ("cora", "citeseer"):
            ds = load_dataset(name, scale=0.2, seed=5)
            IGCNAccelerator().islandize(ds.graph).validate()


class TestModelVariants:
    def test_hy_config_has_more_macs(self, cora):
        algo = gcn_model(cora.num_features, cora.num_classes, variant="algo")
        hy = gcn_model(cora.num_features, cora.num_classes, variant="hy")
        acc = IGCNAccelerator()
        isl = acc.islandize(cora.graph)
        rep_algo = acc.run(
            cora.graph, algo, feature_density=cora.feature_density,
            islandization=isl,
        )
        rep_hy = acc.run(
            cora.graph, hy, feature_density=cora.feature_density,
            islandization=isl,
        )
        assert rep_hy.total_macs > rep_algo.total_macs
        assert rep_hy.latency_us > rep_algo.latency_us

    def test_gin_three_layer_report(self, cora):
        model = gin_model(cora.num_features, cora.num_classes)
        rep = IGCNAccelerator().run(
            cora.graph, model, feature_density=cora.feature_density
        )
        assert len(rep.layers) == 3

    def test_reports_share_islandization_cache(self, cora):
        acc = IGCNAccelerator()
        isl = acc.islandize(cora.graph)
        m1 = gcn_model(cora.num_features, cora.num_classes)
        m2 = graphsage_model(cora.num_features, cora.num_classes)
        r1 = acc.run(cora.graph, m1, feature_density=cora.feature_density,
                     islandization=isl)
        r2 = acc.run(cora.graph, m2, feature_density=cora.feature_density,
                     islandization=isl)
        assert r1.islandization is r2.islandization


class TestScalingBehaviour:
    def test_bigger_graph_more_cycles(self):
        model_dims = (64, 4)
        cycles = []
        for scale in (0.1, 0.4):
            ds = load_dataset("cora", scale=scale, seed=5)
            model = gcn_model(*model_dims)
            rep = IGCNAccelerator().run(
                ds.graph, model, feature_density=ds.feature_density
            )
            cycles.append(rep.total_cycles)
        assert cycles[1] > cycles[0]

    def test_more_macs_lower_latency(self):
        from repro.hw import HardwareConfig

        ds = load_dataset("cora", scale=0.3, seed=5)
        model = gcn_model(ds.num_features, ds.num_classes)
        small = IGCNAccelerator(hw=HardwareConfig(num_macs=512)).run(
            ds.graph, model, feature_density=ds.feature_density
        )
        big = IGCNAccelerator(hw=HardwareConfig(num_macs=8192)).run(
            ds.graph, model, feature_density=ds.feature_density
        )
        assert big.latency_us < small.latency_us

    def test_locator_parallelism_speeds_locator(self):
        ds = load_dataset("pubmed", scale=0.2, seed=5)
        model = gcn_model(ds.num_features, ds.num_classes)
        slow = IGCNAccelerator(locator=LocatorConfig(p1=4, p2=4)).run(
            ds.graph, model, feature_density=ds.feature_density
        )
        fast = IGCNAccelerator(locator=LocatorConfig(p1=64, p2=64)).run(
            ds.graph, model, feature_density=ds.feature_density
        )
        assert fast.locator_cycles < slow.locator_cycles
